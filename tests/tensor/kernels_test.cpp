#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>

namespace quickdrop {
namespace {
namespace k = quickdrop::kernels;

TEST(KernelsTest, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  const auto c = k::add(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(3), 44.0f);
}

TEST(KernelsTest, AddBroadcastRow) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  const auto c = k::add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(5), 36.0f);
}

TEST(KernelsTest, MulBroadcastColumn) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({2, 1}, {10, 100});
  const auto c = k::mul(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 10.0f);
  EXPECT_FLOAT_EQ(c.at(3), 400.0f);
}

TEST(KernelsTest, BroadcastScalar) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::scalar(5.0f);
  const auto c = k::sub(a, s);
  EXPECT_FLOAT_EQ(c.at(0), -4.0f);
}

TEST(KernelsTest, IncompatibleBroadcastThrows) {
  Tensor a({2, 3});
  Tensor b({2, 4});
  EXPECT_THROW(k::add(a, b), std::invalid_argument);
}

TEST(KernelsTest, UnaryOps) {
  Tensor a({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(k::neg(a).at(0), 1.0f);
  EXPECT_FLOAT_EQ(k::relu(a).at(0), 0.0f);
  EXPECT_FLOAT_EQ(k::relu(a).at(2), 2.0f);
  EXPECT_FLOAT_EQ(k::gt_zero_mask(a).at(0), 0.0f);
  EXPECT_FLOAT_EQ(k::gt_zero_mask(a).at(2), 1.0f);
  EXPECT_NEAR(k::exp(a).at(2), std::exp(2.0f), 1e-5f);
  Tensor b({2}, {1.0f, 4.0f});
  EXPECT_FLOAT_EQ(k::sqrt(b).at(1), 2.0f);
  EXPECT_NEAR(k::log(b).at(1), std::log(4.0f), 1e-6f);
}

TEST(KernelsTest, ScalarOps) {
  Tensor a({2}, {1, 2});
  EXPECT_FLOAT_EQ(k::add_scalar(a, 3).at(1), 5.0f);
  EXPECT_FLOAT_EQ(k::mul_scalar(a, -2).at(0), -2.0f);
}

TEST(KernelsTest, MatmulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const auto c = k::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(2), 139.0f);
  EXPECT_FLOAT_EQ(c.at(3), 154.0f);
}

TEST(KernelsTest, MatmulRejectsBadShapes) {
  EXPECT_THROW(k::matmul(Tensor({2, 3}), Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(k::matmul(Tensor({6}), Tensor({6})), std::invalid_argument);
}

TEST(KernelsTest, Transpose) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto t = k::transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(4), 3.0f);
}

TEST(KernelsTest, PermuteRoundTrip) {
  Tensor a({2, 3, 4});
  for (std::int64_t i = 0; i < a.numel(); ++i) a.at(i) = static_cast<float>(i);
  const auto p = k::permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  const auto back = k::permute(p, {1, 2, 0});
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(back.at(i), a.at(i));
}

TEST(KernelsTest, PermuteValuesCorrect) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  const auto p = k::permute(a, {1, 0});
  // Equivalent to transpose.
  const auto t = k::transpose2d(a);
  for (std::int64_t i = 0; i < p.numel(); ++i) EXPECT_FLOAT_EQ(p.at(i), t.at(i));
}

TEST(KernelsTest, PermuteRejectsNonPermutation) {
  Tensor a({2, 3});
  EXPECT_THROW(k::permute(a, {0, 0}), std::invalid_argument);
  EXPECT_THROW(k::permute(a, {0}), std::invalid_argument);
}

TEST(KernelsTest, ReduceSumToColumn) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto r = k::reduce_sum_to(a, {2, 1});
  EXPECT_FLOAT_EQ(r.at(0), 6.0f);
  EXPECT_FLOAT_EQ(r.at(1), 15.0f);
}

TEST(KernelsTest, ReduceSumToScalar) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto r = k::reduce_sum_to(a, {});
  EXPECT_FLOAT_EQ(r.item(), 21.0f);
}

TEST(KernelsTest, ReduceSumToRejectsIncompatible) {
  Tensor a({2, 3});
  EXPECT_THROW(k::reduce_sum_to(a, {3, 3}), std::invalid_argument);
}

TEST(KernelsTest, BroadcastToExpands) {
  Tensor a({1, 3}, {1, 2, 3});
  const auto b = k::broadcast_to(a, {2, 3});
  EXPECT_FLOAT_EQ(b.at(3), 1.0f);
  EXPECT_FLOAT_EQ(b.at(5), 3.0f);
}

TEST(KernelsTest, BroadcastReduceAreAdjoint) {
  // <broadcast(a), y> == <a, reduce(y)> for all a, y: verify on fixed data.
  Tensor a({2, 1}, {2, 3});
  Tensor y({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto ba = k::broadcast_to(a, {2, 3});
  const auto ry = k::reduce_sum_to(y, {2, 1});
  float lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += ba.at(i) * y.at(i);
  for (std::int64_t i = 0; i < a.numel(); ++i) rhs += a.at(i) * ry.at(i);
  EXPECT_FLOAT_EQ(lhs, rhs);
}

TEST(KernelsTest, Im2ColIdentityKernel) {
  // k=1, pad=0, stride=1: columns are just a reshuffled copy of the input.
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto cols = k::im2col(x, 1, 0, 1);
  EXPECT_EQ(cols.shape(), (Shape{2, 4}));
  EXPECT_FLOAT_EQ(cols.at(0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(4), 5.0f);
}

TEST(KernelsTest, Im2ColKnownPatch) {
  // 1x1x3x3 image, k=2, no pad: 4 patches.
  Tensor x({1, 1, 3, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  const auto cols = k::im2col(x, 2, 0, 1);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));
  // Patch at (0,0): values 0,1,3,4 down the column.
  EXPECT_FLOAT_EQ(cols.at(0), 0.0f);   // row 0 (ki=0,kj=0), patch 0
  EXPECT_FLOAT_EQ(cols.at(4), 1.0f);   // row 1 (ki=0,kj=1), patch 0
  EXPECT_FLOAT_EQ(cols.at(8), 3.0f);   // row 2 (ki=1,kj=0), patch 0
  EXPECT_FLOAT_EQ(cols.at(12), 4.0f);  // row 3 (ki=1,kj=1), patch 0
  // Last patch (1,1): top-left value 4.
  EXPECT_FLOAT_EQ(cols.at(3), 4.0f);
}

TEST(KernelsTest, Im2ColPaddingZeros) {
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const auto cols = k::im2col(x, 3, 1, 1);
  EXPECT_EQ(cols.shape(), (Shape{9, 4}));
  // Center tap (ki=1,kj=1) of patch 0 is x[0,0]=1.
  EXPECT_FLOAT_EQ(cols.at(4 * 4 + 0), 1.0f);
  // Top-left tap of patch 0 is padding.
  EXPECT_FLOAT_EQ(cols.at(0), 0.0f);
}

TEST(KernelsTest, Im2ColCol2ImAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> — the defining adjoint identity.
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  const auto cols_shape = k::im2col(x, 3, 1, 1).shape();
  Tensor c = Tensor::randn(cols_shape, rng);
  const auto ix = k::im2col(x, 3, 1, 1);
  const auto cy = k::col2im(c, x.shape(), 3, 1, 1);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < ix.numel(); ++i) lhs += ix.at(i) * c.at(i);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * cy.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(KernelsTest, Im2ColStride2) {
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  const auto cols = k::im2col(x, 2, 0, 2);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));  // 2x2 output positions
  EXPECT_FLOAT_EQ(cols.at(0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(1), 2.0f);  // next patch starts at column 2
}

TEST(KernelsTest, ConvGeometryValidation) {
  Tensor x({1, 1, 2, 2});
  EXPECT_THROW(k::im2col(x, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(k::im2col(x, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(k::im2col(Tensor({2, 2}), 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(k::col2im(Tensor({4, 5}), {1, 1, 2, 2}, 2, 0, 1), std::invalid_argument);
}

TEST(KernelsTest, RowMax) {
  Tensor a({2, 3}, {1, 5, 2, -1, -7, -2});
  const auto m = k::row_max(a);
  EXPECT_EQ(m.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(m.at(0), 5.0f);
  EXPECT_FLOAT_EQ(m.at(1), -1.0f);
}

TEST(KernelsTest, OneHot) {
  const auto h = k::one_hot({2, 0}, 3);
  EXPECT_EQ(h.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(h.at(2), 1.0f);
  EXPECT_FLOAT_EQ(h.at(3), 1.0f);
  EXPECT_FLOAT_EQ(h.at(0), 0.0f);
  EXPECT_THROW(k::one_hot({3}, 3), std::invalid_argument);
}

TEST(KernelsTest, ArgmaxRows) {
  Tensor a({2, 3}, {1, 5, 2, 9, -7, -2});
  EXPECT_EQ(k::argmax_rows(a), (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace quickdrop
