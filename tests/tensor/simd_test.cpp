// SIMD-vs-scalar bitwise parity for the dispatched microkernels (DESIGN.md
// §13): the scalar table is the oracle; the AVX2 table must reproduce every
// result bit-for-bit, including reduction lane structure and tail handling.
// Also covers the dispatch plumbing itself and the matmul path end-to-end.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace {

using quickdrop::Tensor;
using quickdrop::simd::Dispatch;
using quickdrop::simd::Kernels;

/// Deterministic pseudo-values with varied magnitudes and signs.
float synth_value(std::int64_t i, float phase) {
  const float base = 0.001f * static_cast<float>((i * 2654435761LL) % 2003) - 1.0f;
  const float magnitude = static_cast<float>(1 + (i % 5)) * 0.37f;
  return base * magnitude + phase;
}

std::vector<float> synth_buffer(std::int64_t n, float phase) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = synth_value(i, phase);
  return v;
}

void expect_bitwise_equal(const std::vector<float>& a, const std::vector<float>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]), std::bit_cast<std::uint32_t>(b[i]))
        << what << " diverges at index " << i;
  }
}

void expect_bitwise_equal(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

bool avx2_usable() {
  return quickdrop::simd::avx2_compiled() && quickdrop::simd::avx2_supported();
}

/// Restores auto dispatch when a test returns.
struct DispatchScope {
  explicit DispatchScope(Dispatch d) { quickdrop::simd::force_dispatch(d); }
  ~DispatchScope() { quickdrop::simd::force_dispatch(Dispatch::kAuto); }
};

/// Restores the ambient thread count when a test returns.
struct PoolScope {
  explicit PoolScope(int threads) : saved(quickdrop::num_threads()) {
    quickdrop::set_num_threads(threads);
  }
  ~PoolScope() { quickdrop::set_num_threads(saved); }
  int saved;
};

// Sizes exercising empty input, sub-lane tails, exact lane multiples and
// large buffers with a tail.
const std::int64_t kSizes[] = {0, 1, 3, 4, 7, 8, 9, 31, 64, 1000, 1003, 4096, 5001};

// ---------------------------------------------------------------------------
// Microkernel parity: scalar table vs AVX2 table, same inputs, same bits.
// ---------------------------------------------------------------------------

TEST(SimdParity, ElementwiseKernelsMatchBitwise) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 not available";
  const Kernels& s = quickdrop::simd::scalar_kernels();
  const Kernels& v = quickdrop::simd::avx2_kernels();
  for (const std::int64_t n : kSizes) {
    const auto x = synth_buffer(n, 0.25f);
    const auto base = synth_buffer(n, -0.5f);

    auto ys = base, yv = base;
    s.axpy(ys.data(), x.data(), 0.3125f, n);
    v.axpy(yv.data(), x.data(), 0.3125f, n);
    expect_bitwise_equal(ys, yv, "axpy");

    ys = base;
    yv = base;
    s.scale(ys.data(), 0.731f, n);
    v.scale(yv.data(), 0.731f, n);
    expect_bitwise_equal(ys, yv, "scale");

    std::vector<float> os(static_cast<std::size_t>(n)), ov(static_cast<std::size_t>(n));
    s.subtract(os.data(), x.data(), base.data(), n);
    v.subtract(ov.data(), x.data(), base.data(), n);
    expect_bitwise_equal(os, ov, "subtract");
  }
}

TEST(SimdParity, ReductionsMatchBitwise) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 not available";
  const Kernels& s = quickdrop::simd::scalar_kernels();
  const Kernels& v = quickdrop::simd::avx2_kernels();
  for (const std::int64_t n : kSizes) {
    const auto x = synth_buffer(n, 0.125f);
    const auto y = synth_buffer(n, -0.375f);
    expect_bitwise_equal(s.sum_squares(x.data(), n), v.sum_squares(x.data(), n), "sum_squares");
    expect_bitwise_equal(s.sum_squared_diff(x.data(), y.data(), n),
                         v.sum_squared_diff(x.data(), y.data(), n), "sum_squared_diff");
  }
}

TEST(SimdParity, WeightedAverageFoldMatchesBitwise) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 not available";
  const Kernels& s = quickdrop::simd::scalar_kernels();
  const Kernels& v = quickdrop::simd::avx2_kernels();
  for (const std::int64_t n : kSizes) {
    const auto x0 = synth_buffer(n, 0.0f);
    const auto x1 = synth_buffer(n, 0.625f);
    std::vector<double> as(static_cast<std::size_t>(n), 0.0);
    std::vector<double> av(static_cast<std::size_t>(n), 0.0);
    // Two folds in the same order, like two clients of weighted_average.
    s.wavg_fold(as.data(), x0.data(), 0.312, n);
    s.wavg_fold(as.data(), x1.data(), 0.00071, n);
    v.wavg_fold(av.data(), x0.data(), 0.312, n);
    v.wavg_fold(av.data(), x1.data(), 0.00071, n);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(as[u]), std::bit_cast<std::uint64_t>(av[u]))
          << "wavg_fold diverges at " << i;
    }
    std::vector<float> outs(static_cast<std::size_t>(n)), outv(static_cast<std::size_t>(n));
    s.wavg_store(outs.data(), as.data(), n);
    v.wavg_store(outv.data(), av.data(), n);
    expect_bitwise_equal(outs, outv, "wavg_store");
  }
}

TEST(SimdParity, MatmulTileMatchesBitwise) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 not available";
  const Kernels& s = quickdrop::simd::scalar_kernels();
  const Kernels& v = quickdrop::simd::avx2_kernels();
  for (const std::int64_t n : kSizes) {
    const auto b0 = synth_buffer(n, 0.1f), b1 = synth_buffer(n, 0.2f);
    const auto b2 = synth_buffer(n, 0.3f), b3 = synth_buffer(n, 0.4f);
    auto cs = synth_buffer(n, -1.0f);
    auto cv = cs;
    s.matmul_tile4(cs.data(), 0.17f, -0.61f, 1.13f, 0.029f, b0.data(), b1.data(), b2.data(),
                   b3.data(), n);
    v.matmul_tile4(cv.data(), 0.17f, -0.61f, 1.13f, 0.029f, b0.data(), b1.data(), b2.data(),
                   b3.data(), n);
    expect_bitwise_equal(cs, cv, "matmul_tile4");
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the dispatched matmul kernel is bitwise identical across
// dispatch paths and thread counts (the golden-checkpoint metrics depend on
// this forward path staying put).
// ---------------------------------------------------------------------------

Tensor synth_matrix(std::int64_t rows, std::int64_t cols, float phase) {
  Tensor t({rows, cols});
  auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = synth_value(static_cast<std::int64_t>(i), phase);
  }
  return t;
}

TEST(SimdDispatch, MatmulBitwiseAcrossDispatchAndThreads) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 not available";
  // Sizes straddle the 4-way kk unroll (k=9, k=130 also crosses the kk tile)
  // and leave a j-loop tail (n=13, n=33).
  const struct {
    std::int64_t m, k, n;
  } cases[] = {{5, 9, 13}, {17, 130, 33}, {8, 4, 8}};
  for (const auto& c : cases) {
    const Tensor a = synth_matrix(c.m, c.k, 0.5f);
    const Tensor b = synth_matrix(c.k, c.n, -0.25f);
    std::vector<float> reference;
    {
      DispatchScope dispatch(Dispatch::kScalar);
      PoolScope pool(1);
      const Tensor out = quickdrop::kernels::matmul(a, b);
      reference.assign(out.data().begin(), out.data().end());
    }
    for (const int threads : {1, 4, 8}) {
      for (const Dispatch d : {Dispatch::kScalar, Dispatch::kAvx2}) {
        DispatchScope dispatch(d);
        PoolScope pool(threads);
        const Tensor out = quickdrop::kernels::matmul(a, b);
        std::vector<float> got(out.data().begin(), out.data().end());
        expect_bitwise_equal(reference, got, "matmul");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ForceDispatchSelectsRequestedTable) {
  {
    DispatchScope dispatch(Dispatch::kScalar);
    EXPECT_STREQ(quickdrop::simd::active().name, "scalar");
    EXPECT_EQ(quickdrop::simd::active_dispatch(), Dispatch::kScalar);
  }
  if (avx2_usable()) {
    DispatchScope dispatch(Dispatch::kAvx2);
    EXPECT_STREQ(quickdrop::simd::active().name, "avx2");
    EXPECT_EQ(quickdrop::simd::active_dispatch(), Dispatch::kAvx2);
  }
}

TEST(SimdDispatch, Avx2RequestDegradesToScalarWhenUnsupported) {
  if (avx2_usable()) GTEST_SKIP() << "AVX2 available; degradation path not reachable";
  DispatchScope dispatch(Dispatch::kAvx2);
  EXPECT_STREQ(quickdrop::simd::active().name, "scalar");
}

TEST(SimdDispatch, ScalarOracleTablesAreDistinctWhenAvx2Compiled) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 not available";
  EXPECT_NE(&quickdrop::simd::scalar_kernels(), &quickdrop::simd::avx2_kernels());
}

}  // namespace
