// Failure-injection tests: FedAvg must stay correct when sampled clients
// crash mid-round, and the resilient engine must contain richer faults
// (stragglers, corrupted uploads) behind server-side validation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::fl {
namespace {

struct Fixture {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  std::unique_ptr<nn::Module> model;

  Fixture() : tt(make_data()) {
    Rng prng(1);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 4, prng));
    nn::ConvNetConfig cfg;
    cfg.in_channels = 1;
    cfg.image_size = 8;
    cfg.num_classes = 3;
    cfg.width = 8;
    cfg.depth = 1;
    Rng mrng(2);
    model = nn::make_convnet(cfg, mrng);
  }

  static data::TrainTest make_data() {
    data::SyntheticSpec spec;
    spec.num_classes = 3;
    spec.channels = 1;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 10;
    spec.noise = 0.3f;
    spec.seed = 91;
    return data::make_synthetic(spec);
  }
};

TEST(FailureInjectionTest, ModerateDropoutStillLearns) {
  Fixture f;
  SgdLocalUpdate update(5, 16, 0.1f);
  FedAvgConfig cfg{.rounds = 10, .participation = 1.0f, .dropout_rate = 0.3f};
  CostMeter cost;
  Rng rng(3);
  const auto state =
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, cfg, rng, cost);
  nn::load_state(*f.model, state);
  EXPECT_GT(metrics::accuracy(*f.model, f.tt.test), 0.6);
  // Fewer sample-gradients than the failure-free run would use.
  EXPECT_LT(cost.sample_grads, 10 * 4 * 5 * 16);
  EXPECT_GT(cost.sample_grads, 0);
}

TEST(FailureInjectionTest, FullCohortCrashIsNoOpRound) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  // dropout_rate close to 1: most rounds lose everyone.
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f, .dropout_rate = 0.999f};
  CostMeter cost;
  Rng rng(3);
  const auto init = nn::state_of(*f.model);
  int callbacks = 0;
  const auto state = run_fedavg(*f.model, init, f.clients, update, cfg, rng, cost,
                                [&](int, const nn::ModelState&) { ++callbacks; });
  EXPECT_EQ(callbacks, 3);  // every round reports, even lost ones
  EXPECT_EQ(cost.rounds, 3);
  // With near-certain total failure the state is (almost surely) unchanged.
  EXPECT_NEAR(nn::l2_norm(nn::subtract(state, init)), 0.0, 1e-9);
}

TEST(FailureInjectionTest, ZeroDropoutMatchesBaseline) {
  Fixture f;
  SgdLocalUpdate update(2, 8, 0.1f);
  CostMeter cost1, cost2;
  Rng rng1(7), rng2(7);
  const auto init = nn::state_of(*f.model);
  FedAvgConfig plain{.rounds = 2, .participation = 1.0f};
  FedAvgConfig with_zero{.rounds = 2, .participation = 1.0f, .dropout_rate = 0.0f};
  const auto a = run_fedavg(*f.model, init, f.clients, update, plain, rng1, cost1);
  const auto b = run_fedavg(*f.model, init, f.clients, update, with_zero, rng2, cost2);
  EXPECT_NEAR(nn::l2_norm(nn::subtract(a, b)), 0.0, 1e-9);
}

TEST(FailureInjectionTest, ConfigValidation) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  CostMeter cost;
  Rng rng(3);
  FedAvgConfig bad{.rounds = 1, .participation = 1.0f, .dropout_rate = 1.0f};
  EXPECT_THROW(
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, bad, rng, cost),
      std::invalid_argument);
  bad.dropout_rate = -0.1f;
  EXPECT_THROW(
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, bad, rng, cost),
      std::invalid_argument);
}

TEST(FailureInjectionTest, NonFiniteConfigRejected) {
  // Regression: NaN participation/dropout_rate used to slip past the range
  // checks (NaN compares false against every bound).
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  CostMeter cost;
  Rng rng(3);
  FedAvgConfig bad{.rounds = 1, .participation = std::nanf(""), .dropout_rate = 0.0f};
  EXPECT_THROW(
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, bad, rng, cost),
      std::invalid_argument);
  bad.participation = 1.0f;
  bad.dropout_rate = std::nanf("");
  EXPECT_THROW(
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, bad, rng, cost),
      std::invalid_argument);
}

void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << "flat entry " << j;
  }
}

FaultRates mixed_rates() {
  FaultRates rates;
  rates.crash = 0.1f;
  rates.straggler = 0.05f;
  rates.corrupt_nan = 0.1f;
  rates.corrupt_inf = 0.05f;
  rates.exploded_norm = 0.05f;
  rates.stale_update = 0.05f;
  return rates;
}

TEST(FailureInjectionTest, SameSeedAndPlanAreBitwiseDeterministic) {
  // Acceptance: same seed + same FaultPlan => bitwise-identical final state.
  Fixture f;
  FedAvgConfig cfg{.rounds = 6, .participation = 0.75f};
  cfg.faults = FaultPlan(41, mixed_rates());
  cfg.defense.norm_outlier_multiplier = 8.0f;
  cfg.defense.min_quorum = 0.5f;
  cfg.defense.max_round_attempts = 3;
  const auto init = nn::state_of(*f.model);
  nn::ModelState results[2];
  CostMeter costs[2];
  for (int i = 0; i < 2; ++i) {
    SgdLocalUpdate update(2, 8, 0.1f);
    Rng rng(17);
    results[i] = run_fedavg(*f.model, init, f.clients, update, cfg, rng, costs[i]);
  }
  expect_states_bitwise_equal(results[0], results[1]);
  EXPECT_EQ(costs[0].crashed_clients, costs[1].crashed_clients);
  EXPECT_EQ(costs[0].quarantined_updates, costs[1].quarantined_updates);
  EXPECT_EQ(costs[0].sample_grads, costs[1].sample_grads);
}

TEST(FailureInjectionTest, PoisonedUploadsAreQuarantinedAndGlobalStaysFinite) {
  // Acceptance: with corruption faults on, the aggregated global state is
  // all-finite after every round and each rejection is recorded.
  Fixture f;
  FaultRates rates;
  rates.corrupt_nan = 0.2f;
  rates.corrupt_inf = 0.1f;
  FedAvgConfig cfg{.rounds = 8, .participation = 1.0f};
  cfg.faults = FaultPlan(23, rates);
  SgdLocalUpdate update(2, 8, 0.1f);
  CostMeter cost;
  Rng rng(9);
  int rounds_seen = 0;
  const auto state = run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, cfg, rng,
                                cost, [&](int, const nn::ModelState& g) {
                                  ++rounds_seen;
                                  EXPECT_TRUE(nn::all_finite(g));
                                });
  EXPECT_EQ(rounds_seen, 8);
  EXPECT_TRUE(nn::all_finite(state));
  // Every corrupt draw in the schedule maps to exactly one quarantine entry
  // (participation 1.0, single attempt per round => the schedule is the run).
  std::int64_t expected = 0;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 4; ++c) {
      const FaultKind k = cfg.faults.fault_for(r, 0, c);
      expected += k == FaultKind::kCorruptNan || k == FaultKind::kCorruptInf;
    }
  }
  EXPECT_GT(expected, 0);
  EXPECT_EQ(cost.quarantined_updates, expected);
}

TEST(FailureInjectionTest, ExplodedNormCaughtByOutlierRule) {
  Fixture f;
  FedAvgConfig cfg{.rounds = 2, .participation = 1.0f};
  cfg.faults.inject(0, 1, FaultKind::kExplodedNorm);
  cfg.defense.norm_outlier_multiplier = 8.0f;
  FedAvgConfig undefended = cfg;
  undefended.defense.norm_outlier_multiplier = 0.0f;
  SgdLocalUpdate update1(2, 8, 0.1f), update2(2, 8, 0.1f);
  CostMeter cost1, cost2;
  Rng rng1(9), rng2(9);
  const auto init = nn::state_of(*f.model);
  const auto defended = run_fedavg(*f.model, init, f.clients, update1, cfg, rng1, cost1);
  const auto poisoned = run_fedavg(*f.model, init, f.clients, update2, undefended, rng2, cost2);
  EXPECT_EQ(cost1.quarantined_updates, 1);
  EXPECT_EQ(cost2.quarantined_updates, 0);
  // Undefended, the exploded update dominates the average.
  EXPECT_LT(nn::l2_norm(defended), 1e3);
  EXPECT_GT(nn::l2_norm(poisoned), 1e4);
}

TEST(FailureInjectionTest, QuorumFailureRetriesAndRecoversRound) {
  // Acceptance: a scripted first-attempt wipeout retries once and then the
  // run proceeds exactly like a fault-free one.
  Fixture f;
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f};
  for (int c = 0; c < 4; ++c) cfg.faults.inject(1, c, FaultKind::kCrash);
  cfg.defense.min_quorum = 0.5f;
  cfg.defense.max_round_attempts = 2;
  cfg.defense.retry_backoff_seconds = 2.0f;
  FedAvgConfig clean{.rounds = 3, .participation = 1.0f};
  SgdLocalUpdate update1(2, 8, 0.1f), update2(2, 8, 0.1f);
  CostMeter cost1, cost2;
  Rng rng1(13), rng2(13);
  const auto init = nn::state_of(*f.model);
  const auto retried = run_fedavg(*f.model, init, f.clients, update1, cfg, rng1, cost1);
  const auto baseline = run_fedavg(*f.model, init, f.clients, update2, clean, rng2, cost2);
  EXPECT_EQ(cost1.retried_rounds, 1);
  EXPECT_EQ(cost1.lost_rounds, 0);
  EXPECT_EQ(cost1.crashed_clients, 4);
  EXPECT_DOUBLE_EQ(cost1.sim_backoff_seconds, 2.0);
  expect_states_bitwise_equal(retried, baseline);
}

TEST(FailureInjectionTest, QuorumExhaustionLosesRoundAndCarriesGlobalOver) {
  Fixture f;
  FedAvgConfig cfg{.rounds = 1, .participation = 1.0f};
  for (int c = 0; c < 4; ++c) cfg.faults.inject(0, c, FaultKind::kCrash);
  SgdLocalUpdate update(2, 8, 0.1f);
  CostMeter cost;
  Rng rng(13);
  const auto init = nn::state_of(*f.model);
  const auto state = run_fedavg(*f.model, init, f.clients, update, cfg, rng, cost);
  EXPECT_EQ(cost.lost_rounds, 1);
  EXPECT_EQ(cost.rounds, 1);
  expect_states_bitwise_equal(state, init);
}

TEST(FailureInjectionTest, StragglerSpendsComputeButIsNotAggregated) {
  Fixture f;
  FedAvgConfig straggle{.rounds = 1, .participation = 1.0f};
  straggle.faults.inject(0, 2, FaultKind::kStraggler);
  FedAvgConfig crash{.rounds = 1, .participation = 1.0f};
  crash.faults.inject(0, 2, FaultKind::kCrash);
  SgdLocalUpdate update1(2, 8, 0.1f), update2(2, 8, 0.1f);
  CostMeter cost1, cost2;
  Rng rng1(13), rng2(13);
  const auto init = nn::state_of(*f.model);
  const auto a = run_fedavg(*f.model, init, f.clients, update1, straggle, rng1, cost1);
  const auto b = run_fedavg(*f.model, init, f.clients, update2, crash, rng2, cost2);
  // Identical aggregate (the late upload is discarded either way) ...
  expect_states_bitwise_equal(a, b);
  EXPECT_EQ(cost1.straggler_timeouts, 1);
  EXPECT_EQ(cost2.crashed_clients, 1);
  // ... but the straggler burned local compute and a model download.
  EXPECT_GT(cost1.sample_grads, cost2.sample_grads);
  EXPECT_GT(cost1.bytes_down, cost2.bytes_down);
}

TEST(FailureInjectionTest, ResumeFromCursorMatchesUninterruptedRun) {
  // Acceptance: kill after round k, resume from the (state, rng) cursor,
  // land on a bitwise-identical final state.
  Fixture f;
  FedAvgConfig cfg{.rounds = 6, .participation = 0.75f};
  cfg.faults = FaultPlan(41, mixed_rates());
  cfg.defense.min_quorum = 0.25f;
  cfg.defense.max_round_attempts = 2;
  const auto init = nn::state_of(*f.model);

  SgdLocalUpdate update1(2, 8, 0.1f);
  CostMeter cost1;
  Rng rng1(29);
  nn::ModelState cursor_state;
  std::vector<std::uint8_t> cursor_rng;
  const auto full = run_fedavg(*f.model, init, f.clients, update1, cfg, rng1, cost1, {}, {},
                               [&](int round, const nn::ModelState& g, const Rng& r) {
                                 if (round == 2) {  // "crash" after 3 completed rounds
                                   cursor_state = g;
                                   cursor_rng = r.serialize();
                                 }
                               });
  ASSERT_FALSE(cursor_rng.empty());

  SgdLocalUpdate update2(2, 8, 0.1f);
  CostMeter cost2;
  Rng rng2 = Rng::deserialize(cursor_rng);
  FedAvgConfig resume = cfg;
  resume.start_round = 3;
  const auto resumed =
      run_fedavg(*f.model, cursor_state, f.clients, update2, resume, rng2, cost2);
  expect_states_bitwise_equal(resumed, full);
}

}  // namespace
}  // namespace quickdrop::fl
