// Failure-injection tests: FedAvg must stay correct when sampled clients
// crash mid-round.
#include <gtest/gtest.h>

#include <set>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::fl {
namespace {

struct Fixture {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  std::unique_ptr<nn::Module> model;

  Fixture() : tt(make_data()) {
    Rng prng(1);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 4, prng));
    nn::ConvNetConfig cfg;
    cfg.in_channels = 1;
    cfg.image_size = 8;
    cfg.num_classes = 3;
    cfg.width = 8;
    cfg.depth = 1;
    Rng mrng(2);
    model = nn::make_convnet(cfg, mrng);
  }

  static data::TrainTest make_data() {
    data::SyntheticSpec spec;
    spec.num_classes = 3;
    spec.channels = 1;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 10;
    spec.noise = 0.3f;
    spec.seed = 91;
    return data::make_synthetic(spec);
  }
};

TEST(FailureInjectionTest, ModerateDropoutStillLearns) {
  Fixture f;
  SgdLocalUpdate update(5, 16, 0.1f);
  FedAvgConfig cfg{.rounds = 10, .participation = 1.0f, .dropout_rate = 0.3f};
  CostMeter cost;
  Rng rng(3);
  const auto state =
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, cfg, rng, cost);
  nn::load_state(*f.model, state);
  EXPECT_GT(metrics::accuracy(*f.model, f.tt.test), 0.6);
  // Fewer sample-gradients than the failure-free run would use.
  EXPECT_LT(cost.sample_grads, 10 * 4 * 5 * 16);
  EXPECT_GT(cost.sample_grads, 0);
}

TEST(FailureInjectionTest, FullCohortCrashIsNoOpRound) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  // dropout_rate close to 1: most rounds lose everyone.
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f, .dropout_rate = 0.999f};
  CostMeter cost;
  Rng rng(3);
  const auto init = nn::state_of(*f.model);
  int callbacks = 0;
  const auto state = run_fedavg(*f.model, init, f.clients, update, cfg, rng, cost,
                                [&](int, const nn::ModelState&) { ++callbacks; });
  EXPECT_EQ(callbacks, 3);  // every round reports, even lost ones
  EXPECT_EQ(cost.rounds, 3);
  // With near-certain total failure the state is (almost surely) unchanged.
  EXPECT_NEAR(nn::l2_norm(nn::subtract(state, init)), 0.0, 1e-9);
}

TEST(FailureInjectionTest, ZeroDropoutMatchesBaseline) {
  Fixture f;
  SgdLocalUpdate update(2, 8, 0.1f);
  CostMeter cost1, cost2;
  Rng rng1(7), rng2(7);
  const auto init = nn::state_of(*f.model);
  FedAvgConfig plain{.rounds = 2, .participation = 1.0f};
  FedAvgConfig with_zero{.rounds = 2, .participation = 1.0f, .dropout_rate = 0.0f};
  const auto a = run_fedavg(*f.model, init, f.clients, update, plain, rng1, cost1);
  const auto b = run_fedavg(*f.model, init, f.clients, update, with_zero, rng2, cost2);
  EXPECT_NEAR(nn::l2_norm(nn::subtract(a, b)), 0.0, 1e-9);
}

TEST(FailureInjectionTest, ConfigValidation) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  CostMeter cost;
  Rng rng(3);
  FedAvgConfig bad{.rounds = 1, .participation = 1.0f, .dropout_rate = 1.0f};
  EXPECT_THROW(
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, bad, rng, cost),
      std::invalid_argument);
  bad.dropout_rate = -0.1f;
  EXPECT_THROW(
      run_fedavg(*f.model, nn::state_of(*f.model), f.clients, update, bad, rng, cost),
      std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::fl
