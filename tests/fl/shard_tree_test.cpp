// ShardTree (fl/shard_tree.h): the streaming sharded merge is bitwise
// invariant across shard counts {1,2,8,64} × thread counts {1,4,8}; the
// quantized probe reproduces l2_distance/all_finite bit for bit;
// fold_quantized equals decode-then-fold; malformed frames are rejected
// before any lane is touched; and full resilient rounds produce identical
// bits whether the engine streams (no outlier rule) or buffers the cohort
// (outlier rule on), under faults and quantized transport alike.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "fl/quantize.h"
#include "fl/shard_tree.h"
#include "nn/convnet.h"
#include "nn/state.h"
#include "util/thread_pool.h"

namespace quickdrop::fl {
namespace {

using quickdrop::Shape;
using quickdrop::nn::ModelState;
using quickdrop::nn::StateLayout;

float synth_value(std::int64_t i, float phase) {
  return 0.001f * static_cast<float>((i * 2654435761LL) % 2003) - 1.0f + phase;
}

// Several kStateBlock blocks with a ragged tail; kQuantBlock divides
// kStateBlock, so wire blocks land inside reduction blocks.
const std::vector<Shape> kShapes = {{16, 3, 3, 3}, {16}, {200, 173}, {173}, {3}};

ModelState make_state(const std::shared_ptr<const StateLayout>& layout, float phase) {
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = synth_value(static_cast<std::int64_t>(i), phase);
  }
  return {layout, std::move(values)};
}

void expect_bitwise_equal(const ModelState& a, const ModelState& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a.at(i)), std::bit_cast<std::uint32_t>(b.at(i)))
        << what << " diverges at flat index " << i;
  }
}

struct PoolScope {
  explicit PoolScope(int threads) : saved(quickdrop::num_threads()) {
    quickdrop::set_num_threads(threads);
  }
  ~PoolScope() { quickdrop::set_num_threads(saved); }
  int saved;
};

TEST(AggregationConfigTest, Validation) {
  EXPECT_NO_THROW((AggregationConfig{.shards = 1, .fanout = 8}.validate()));
  EXPECT_NO_THROW((AggregationConfig{.shards = 64, .fanout = 2}.validate()));
  EXPECT_THROW((AggregationConfig{.shards = 3, .fanout = 8}.validate()), std::invalid_argument);
  EXPECT_THROW((AggregationConfig{.shards = 0, .fanout = 8}.validate()), std::invalid_argument);
  EXPECT_THROW((AggregationConfig{.shards = 128, .fanout = 8}.validate()),
               std::invalid_argument);
  EXPECT_THROW((AggregationConfig{.shards = 4, .fanout = 1}.validate()), std::invalid_argument);
  EXPECT_THROW((AggregationConfig{.shards = 4, .fanout = 65}.validate()), std::invalid_argument);
}

TEST(ShardTreeTest, TopologyAccounting) {
  const auto layout = StateLayout::of_shapes(kShapes);
  ShardTree tree(layout, {.shards = 8, .fanout = 2});
  EXPECT_EQ(tree.levels(), 1 + 3);  // 8 shards through fanout-2 regionals
  for (int c = 0; c < 200; ++c) {
    const int lane = ShardTree::lane_of(c);
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, 64);
    EXPECT_EQ(tree.shard_of(c), lane * 8 / 64);
  }
  const ModelState s = make_state(layout, 0.0f);
  tree.fold(3, s, 1.0);
  tree.fold(4, s, 1.0);
  EXPECT_EQ(tree.folds(), 2);
  std::int64_t per_shard = 0;
  for (int shard = 0; shard < 8; ++shard) per_shard += tree.shard_folds(shard);
  EXPECT_EQ(per_shard, 2);
  EXPECT_GT(tree.memory_bytes(), 0);
}

TEST(ShardTreeTest, MergeBitsInvariantAcrossShardAndThreadCounts) {
  const auto layout = StateLayout::of_shapes(kShapes);
  std::vector<ModelState> states;
  double total_weight = 0.0;
  for (int c = 0; c < 37; ++c) {
    states.push_back(make_state(layout, 0.03f * static_cast<float>(c)));
    total_weight += static_cast<double>(1 + c % 9);
  }

  ModelState reference;
  for (const int threads : {1, 4, 8}) {
    PoolScope pool(threads);
    for (const int shards : {1, 2, 8, 64}) {
      ShardTree tree(layout, {.shards = shards, .fanout = 8});
      for (int c = 0; c < static_cast<int>(states.size()); ++c) {
        tree.fold(c, states[static_cast<std::size_t>(c)], static_cast<double>(1 + c % 9));
      }
      ModelState merged = tree.finalize(1.0 / total_weight);
      if (reference.empty()) {
        reference = std::move(merged);
      } else {
        expect_bitwise_equal(merged, reference, "shard/thread-count sweep");
      }
    }
  }
}

TEST(ShardTreeTest, ProbeMatchesMaterializedValidationBitwise) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState global = make_state(layout, 0.0f);
  const ModelState client = make_state(layout, 0.25f);
  ShardTree tree(layout, {.shards = 4, .fanout = 8});

  for (const Codec codec : {Codec::kInt8, Codec::kBf16}) {
    const auto wire = encode_delta(nn::subtract(client, global), codec);
    // The buffered engine's validation path: materialize global + delta,
    // then all_finite / l2_distance.
    const ModelState delta = decode_delta(wire, layout);
    ModelState recon = global;
    nn::axpy(recon, delta, 1.0f);
    const auto probe = tree.probe_quantized(wire, global);
    EXPECT_EQ(probe.finite, nn::all_finite(recon));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(probe.norm),
              std::bit_cast<std::uint64_t>(nn::l2_distance(recon, global)));
  }
}

TEST(ShardTreeTest, ProbeFlagsNonFiniteReconstruction) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState global = make_state(layout, 0.0f);
  ModelState poisoned = make_state(layout, 0.25f);
  poisoned.data()[123] = std::numeric_limits<float>::quiet_NaN();
  ShardTree tree(layout, {.shards = 1, .fanout = 8});
  // bf16 keeps NaN payloads representable on the wire.
  const auto wire = encode_delta(nn::subtract(poisoned, global), Codec::kBf16);
  const auto probe = tree.probe_quantized(wire, global);
  EXPECT_FALSE(probe.finite);
}

TEST(ShardTreeTest, FoldQuantizedMatchesDecodeThenFoldBitwise) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState global = make_state(layout, 0.0f);

  for (const Codec codec : {Codec::kInt8, Codec::kBf16}) {
    ShardTree streamed(layout, {.shards = 8, .fanout = 8});
    ShardTree buffered(layout, {.shards = 8, .fanout = 8});
    double total_weight = 0.0;
    for (int c = 0; c < 11; ++c) {
      const ModelState client = make_state(layout, 0.1f * static_cast<float>(c + 1));
      const auto wire = encode_delta(nn::subtract(client, global), codec);
      const double w = static_cast<double>(2 + c);
      streamed.probe_quantized(wire, global);
      streamed.fold_quantized(c, wire, global, w);
      ModelState recon = global;
      nn::axpy(recon, decode_delta(wire, layout), 1.0f);
      buffered.fold(c, recon, w);
      total_weight += w;
    }
    expect_bitwise_equal(streamed.finalize(1.0 / total_weight),
                         buffered.finalize(1.0 / total_weight),
                         "decode-into-accumulator vs decode-then-fold");
  }
}

TEST(ShardTreeTest, MalformedFrameQuarantinedBeforeAnyFold) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState global = make_state(layout, 0.0f);
  const ModelState client = make_state(layout, 0.2f);
  auto wire = encode_delta(nn::subtract(client, global), Codec::kInt8);
  wire.resize(wire.size() / 2);  // truncated mid-frame

  ShardTree tree(layout, {.shards = 4, .fanout = 8});
  EXPECT_THROW(tree.probe_quantized(wire, global), nn::StateError);

  // The failed probe left no trace: folding a good update afterwards gives
  // the same bits as a tree that never saw the bad frame.
  ShardTree fresh(layout, {.shards = 4, .fanout = 8});
  const auto good = encode_delta(nn::subtract(client, global), Codec::kInt8);
  tree.probe_quantized(good, global);
  tree.fold_quantized(7, good, global, 3.0);
  fresh.probe_quantized(good, global);
  fresh.fold_quantized(7, good, global, 3.0);
  expect_bitwise_equal(tree.finalize(1.0 / 3.0), fresh.finalize(1.0 / 3.0),
                       "post-quarantine fold");
}

// --- Engine-level identity: full resilient rounds through the tree. ---

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  spec.noise = 0.3f;
  spec.max_shift = 1;
  spec.seed = 9;
  return spec;
}

nn::ConvNetConfig tiny_net() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 8;
  cfg.depth = 1;
  return cfg;
}

struct Fixture {
  data::TrainTest tt = data::make_synthetic(tiny_spec());
  std::vector<data::Dataset> clients;
  ModelFactory factory;
  std::unique_ptr<nn::Module> scratch;
  ModelState initial;  ///< pinned start state: the engine mutates `scratch`

  Fixture() {
    Rng prng(1);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 6, prng));
    auto shared_rng = std::make_shared<Rng>(11);
    factory = [rng = shared_rng]() { return nn::make_convnet(tiny_net(), *rng); };
    scratch = factory();
    initial = nn::state_of(*scratch);
  }

  ModelState run(const FedAvgConfig& cfg) {
    SgdLocalUpdate update(2, 8, 0.1f);
    CostMeter cost;
    Rng rng(5);
    return run_fedavg(*scratch, initial, clients, update, cfg, rng, cost);
  }
};

FedAvgConfig engine_config() {
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f};
  FaultRates rates;
  rates.crash = 0.15f;
  rates.corrupt_nan = 0.1f;
  cfg.faults = FaultPlan(77, rates);
  cfg.defense.min_quorum = 0.3f;
  cfg.defense.max_round_attempts = 3;
  return cfg;
}

TEST(ShardTreeEngineTest, RoundBitsInvariantAcrossShardsThreadsAndTransport) {
  Fixture f;
  for (const Codec codec : {Codec::kNone, Codec::kInt8}) {
    ModelState reference;
    for (const int threads : {1, 4}) {
      PoolScope pool(threads);
      for (const int shards : {1, 4, 64}) {
        auto cfg = engine_config();
        cfg.transport.codec = codec;
        cfg.aggregation = {.shards = shards, .fanout = 4};
        if (threads > 1) cfg.client_model_factory = f.factory;
        ModelState state = f.run(cfg);
        if (reference.empty()) {
          reference = std::move(state);
        } else {
          expect_bitwise_equal(state, reference, "engine shard/thread sweep");
        }
      }
    }
  }
}

TEST(ShardTreeEngineTest, StreamingMatchesBufferedModeBitwise) {
  Fixture f;
  // outlier rule off → streaming wave path; a huge multiplier keeps the
  // buffered path's median gate from rejecting anyone, so the accepted set —
  // and therefore the fold order and bits — is identical in both modes.
  auto streaming_cfg = engine_config();
  streaming_cfg.defense.norm_outlier_multiplier = 0.0f;
  streaming_cfg.aggregation = {.shards = 8, .fanout = 8};
  auto buffered_cfg = streaming_cfg;
  buffered_cfg.defense.norm_outlier_multiplier = 1e9f;
  const ModelState streamed = f.run(streaming_cfg);
  const ModelState buffered = f.run(buffered_cfg);
  expect_bitwise_equal(streamed, buffered, "streaming vs buffered engine mode");
}

}  // namespace
}  // namespace quickdrop::fl
