// Concurrent client rounds: run_resilient with a client_model_factory must be
// bit-identical to the serial path at any thread count — including under
// fault injection, quorum retries, partial participation, and round-level
// resume — with identical cost accounting and callback order.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "nn/convnet.h"
#include "util/thread_pool.h"

namespace quickdrop::fl {
namespace {

struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

struct Fixture {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  nn::ConvNetConfig net;
  std::unique_ptr<nn::Module> model;
  // Captured once: the serial engine trains clients on `model` itself, so
  // state_of(*model) changes after a run — every comparison must start here.
  nn::ModelState init;

  Fixture() : tt(make_data()) {
    Rng prng(1);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 6, prng));
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 3;
    net.width = 8;
    net.depth = 1;
    Rng mrng(2);
    model = nn::make_convnet(net, mrng);
    init = nn::state_of(*model);
  }

  ModelFactory factory() const {
    // Initial parameter values are irrelevant (every client loads the global
    // state first), so a fixed-seed factory keeps this test hermetic.
    const nn::ConvNetConfig cfg = net;
    return [cfg] {
      Rng r(7);
      return nn::make_convnet(cfg, r);
    };
  }

  static data::TrainTest make_data() {
    data::SyntheticSpec spec;
    spec.num_classes = 3;
    spec.channels = 1;
    spec.image_size = 8;
    spec.train_per_class = 24;
    spec.test_per_class = 6;
    spec.noise = 0.3f;
    spec.seed = 91;
    return data::make_synthetic(spec);
  }
};

void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << "flat entry " << j;
  }
}

FaultRates mixed_rates() {
  FaultRates rates;
  rates.crash = 0.1f;
  rates.straggler = 0.05f;
  rates.corrupt_nan = 0.1f;
  rates.corrupt_inf = 0.05f;
  rates.exploded_norm = 0.05f;
  rates.stale_update = 0.05f;
  return rates;
}

FedAvgConfig faulty_config(const Fixture& f) {
  FedAvgConfig cfg{.rounds = 5, .participation = 0.75f};
  cfg.faults = FaultPlan(41, mixed_rates());
  cfg.defense.norm_outlier_multiplier = 8.0f;
  cfg.defense.min_quorum = 0.25f;
  cfg.defense.max_round_attempts = 2;
  cfg.client_model_factory = f.factory();
  return cfg;
}

// One full run at the given thread count; returns (state, cost) and appends
// every client callback as (round, client) to `order` if provided.
std::pair<nn::ModelState, CostMeter> run_at(const Fixture& f, FedAvgConfig cfg, int threads,
                                            std::vector<std::pair<int, int>>* order = nullptr) {
  set_num_threads(threads);
  SgdLocalUpdate update(2, 8, 0.1f);
  CostMeter cost;
  Rng rng(17);
  ClientStateCallback client_cb;
  if (order) {
    client_cb = [order](int round, int client, const nn::ModelState&, const nn::ModelState&) {
      order->emplace_back(round, client);
    };
  }
  auto state = run_fedavg(*f.model, f.init, f.clients, update, cfg, rng, cost, {}, client_cb);
  return {std::move(state), cost};
}

TEST(ParallelRoundTest, BitIdenticalAcrossThreadCountsUnderFaults) {
  Fixture f;
  const FedAvgConfig cfg = faulty_config(f);
  ThreadGuard guard;
  std::vector<std::pair<int, int>> order1;
  const auto [serial, cost1] = run_at(f, cfg, 1, &order1);
  ASSERT_FALSE(order1.empty());
  for (const int t : {2, 8}) {
    std::vector<std::pair<int, int>> order_t;
    const auto [parallel, cost_t] = run_at(f, cfg, t, &order_t);
    expect_states_bitwise_equal(serial, parallel);
    // Cost accounting merges per-client meters in cohort order: totals and
    // fault counters must match the serial run exactly.
    EXPECT_EQ(cost1.sample_grads, cost_t.sample_grads) << t;
    EXPECT_EQ(cost1.bytes_up, cost_t.bytes_up) << t;
    EXPECT_EQ(cost1.bytes_down, cost_t.bytes_down) << t;
    EXPECT_EQ(cost1.crashed_clients, cost_t.crashed_clients) << t;
    EXPECT_EQ(cost1.straggler_timeouts, cost_t.straggler_timeouts) << t;
    EXPECT_EQ(cost1.quarantined_updates, cost_t.quarantined_updates) << t;
    EXPECT_EQ(cost1.retried_rounds, cost_t.retried_rounds) << t;
    EXPECT_EQ(cost1.lost_rounds, cost_t.lost_rounds) << t;
    // Validation stays serial, so FedEraser-style history callbacks fire in
    // the same fixed client order at any thread count.
    EXPECT_EQ(order1, order_t) << t;
  }
}

TEST(ParallelRoundTest, FactoryPathMatchesLegacySerialEngine) {
  // The concurrent engine (factory set) must reproduce the legacy path
  // (factory unset) bitwise, even while actually running multi-threaded.
  Fixture f;
  FedAvgConfig with = faulty_config(f);
  FedAvgConfig without = with;
  without.client_model_factory = nullptr;
  ThreadGuard guard;
  const auto [legacy, cost_a] = run_at(f, without, 8);
  const auto [concurrent, cost_b] = run_at(f, with, 8);
  expect_states_bitwise_equal(legacy, concurrent);
  EXPECT_EQ(cost_a.sample_grads, cost_b.sample_grads);
}

TEST(ParallelRoundTest, ResumeCursorInvariantAcrossThreadCounts) {
  // Kill a 1-thread run after round 2, resume the tail with 8 threads: the
  // spliced run must land exactly on the 8-thread uninterrupted final state.
  Fixture f;
  const FedAvgConfig cfg = faulty_config(f);
  ThreadGuard guard;

  set_num_threads(1);
  SgdLocalUpdate update1(2, 8, 0.1f);
  CostMeter cost1;
  Rng rng1(29);
  nn::ModelState cursor_state;
  std::vector<std::uint8_t> cursor_rng;
  const auto full = run_fedavg(*f.model, f.init, f.clients, update1, cfg, rng1, cost1, {}, {},
                               [&](int round, const nn::ModelState& g, const Rng& r) {
                                 if (round == 2) {
                                   cursor_state = g;
                                   cursor_rng = r.serialize();
                                 }
                               });
  ASSERT_FALSE(cursor_rng.empty());

  set_num_threads(8);
  SgdLocalUpdate update2(2, 8, 0.1f);
  CostMeter cost2;
  Rng rng2 = Rng::deserialize(cursor_rng);
  FedAvgConfig resume = cfg;
  resume.start_round = 3;
  const auto resumed =
      run_fedavg(*f.model, cursor_state, f.clients, update2, resume, rng2, cost2);
  expect_states_bitwise_equal(resumed, full);
}

TEST(ParallelRoundTest, MoreThreadsThanClientsIsSafe) {
  Fixture f;
  FedAvgConfig cfg{.rounds = 2, .participation = 1.0f};
  cfg.client_model_factory = f.factory();
  ThreadGuard guard;
  const auto [serial, cost1] = run_at(f, cfg, 1);
  const auto [wide, cost2] = run_at(f, cfg, 16);  // 16 threads, 6 clients
  expect_states_bitwise_equal(serial, wide);
  EXPECT_EQ(cost1.sample_grads, cost2.sample_grads);
}

TEST(ParallelRoundTest, SingleClientCohortRunsSerially) {
  Fixture f;
  // participation low enough that each round samples exactly one client.
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f / 6.0f};
  cfg.client_model_factory = f.factory();
  ThreadGuard guard;
  const auto [serial, cost1] = run_at(f, cfg, 1);
  const auto [parallel, cost2] = run_at(f, cfg, 4);
  expect_states_bitwise_equal(serial, parallel);
  EXPECT_EQ(cost1.sample_grads, cost2.sample_grads);
}

}  // namespace
}  // namespace quickdrop::fl
