// FaultPlan / corruption / DefenseConfig unit tests (see fl/faults.h).
#include "fl/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

#include "tensor/tensor.h"

namespace quickdrop::fl {
namespace {

nn::ModelState make_state(float fill) {
  Tensor a({3, 4}), b({5});
  for (Tensor* t : {&a, &b}) {
    for (std::int64_t i = 0; i < t->numel(); ++i) {
      t->at(i) = fill + static_cast<float>(i) * 0.1f;
    }
  }
  return nn::FlatState::from_tensors(std::vector<Tensor>{a, b});
}

TEST(FaultRatesTest, ValidateRejectsBadRates) {
  FaultRates ok;
  ok.crash = 0.5f;
  ok.straggler = 0.5f;
  EXPECT_NO_THROW(ok.validate());
  FaultRates negative;
  negative.corrupt_nan = -0.1f;
  EXPECT_THROW(negative.validate(), std::invalid_argument);
  FaultRates nan_rate;
  nan_rate.crash = std::nanf("");
  EXPECT_THROW(nan_rate.validate(), std::invalid_argument);
  FaultRates overflow;
  overflow.crash = 0.6f;
  overflow.stale_update = 0.6f;
  EXPECT_THROW(overflow.validate(), std::invalid_argument);
}

TEST(FaultPlanTest, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) EXPECT_EQ(plan.fault_for(r, 0, c), FaultKind::kNone);
  }
}

TEST(FaultPlanTest, DeterministicAndOrderIndependent) {
  FaultRates rates;
  rates.crash = 0.2f;
  rates.straggler = 0.1f;
  rates.corrupt_nan = 0.1f;
  const FaultPlan a(99, rates), b(99, rates);
  // Query b in reverse order and repeatedly: answers must still match a.
  std::map<std::pair<int, int>, FaultKind> from_a;
  for (int r = 0; r < 10; ++r) {
    for (int c = 0; c < 8; ++c) from_a[{r, c}] = a.fault_for(r, 0, c);
  }
  for (int r = 9; r >= 0; --r) {
    for (int c = 7; c >= 0; --c) {
      EXPECT_EQ(b.fault_for(r, 0, c), (from_a[{r, c}])) << "r=" << r << " c=" << c;
      EXPECT_EQ(b.fault_for(r, 0, c), (from_a[{r, c}])) << "repeat call changed the answer";
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentSchedules) {
  FaultRates rates;
  rates.crash = 0.5f;
  const FaultPlan a(1, rates), b(2, rates);
  int differing = 0;
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 10; ++c) differing += a.fault_for(r, 0, c) != b.fault_for(r, 0, c);
  }
  EXPECT_GT(differing, 20);
}

TEST(FaultPlanTest, BernoulliCrashMatchesRate) {
  const FaultPlan plan = FaultPlan::bernoulli_crash(7, 0.3f);
  int crashes = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const FaultKind k = plan.fault_for(i / 10, 0, i % 10);
    ASSERT_TRUE(k == FaultKind::kNone || k == FaultKind::kCrash);
    crashes += k == FaultKind::kCrash;
  }
  EXPECT_NEAR(static_cast<double>(crashes) / trials, 0.3, 0.03);
}

TEST(FaultPlanTest, RateBandsCoverEveryKind) {
  FaultRates rates;
  rates.crash = rates.straggler = rates.corrupt_nan = 0.15f;
  rates.corrupt_inf = rates.exploded_norm = rates.stale_update = 0.15f;
  const FaultPlan plan(3, rates);
  std::map<FaultKind, int> seen;
  for (int r = 0; r < 100; ++r) {
    for (int c = 0; c < 10; ++c) ++seen[plan.fault_for(r, 0, c)];
  }
  for (const FaultKind k :
       {FaultKind::kNone, FaultKind::kCrash, FaultKind::kStraggler, FaultKind::kCorruptNan,
        FaultKind::kCorruptInf, FaultKind::kExplodedNorm, FaultKind::kStaleUpdate}) {
    EXPECT_GT(seen[k], 0) << fault_kind_name(k);
  }
}

TEST(FaultPlanTest, ScriptedFaultFiresOnFirstAttemptOnly) {
  FaultPlan plan;
  plan.inject(2, 1, FaultKind::kCrash);
  EXPECT_TRUE(plan.any());
  EXPECT_EQ(plan.fault_for(2, 0, 1), FaultKind::kCrash);
  // Retries re-sample a healthy cohort: the script does not re-fire.
  EXPECT_EQ(plan.fault_for(2, 1, 1), FaultKind::kNone);
  EXPECT_EQ(plan.fault_for(2, 0, 0), FaultKind::kNone);
  EXPECT_EQ(plan.fault_for(1, 0, 1), FaultKind::kNone);
}

TEST(FaultPlanTest, ScriptedFaultOverridesRandomSchedule) {
  FaultRates rates;
  rates.crash = 1.0f;
  FaultPlan plan(5, rates);
  plan.inject(0, 0, FaultKind::kStaleUpdate);
  EXPECT_EQ(plan.fault_for(0, 0, 0), FaultKind::kStaleUpdate);
  EXPECT_EQ(plan.fault_for(0, 0, 1), FaultKind::kCrash);
}

TEST(FaultKindTest, NamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCrash), "crash");
  EXPECT_STREQ(fault_kind_name(FaultKind::kStraggler), "straggler");
}

TEST(ApplyCorruptionTest, NanAndInfMakeStateNonFinite) {
  for (const FaultKind kind : {FaultKind::kCorruptNan, FaultKind::kCorruptInf}) {
    auto upload = make_state(1.0f);
    const auto round_start = make_state(0.0f);
    Rng rng(11);
    apply_corruption(kind, upload, round_start, rng);
    EXPECT_FALSE(nn::all_finite(upload)) << fault_kind_name(kind);
  }
}

TEST(ApplyCorruptionTest, ExplodedNormStaysFiniteButHuge) {
  auto upload = make_state(1.0f);
  const auto round_start = make_state(0.0f);
  const double before = nn::l2_norm(upload);
  Rng rng(11);
  apply_corruption(FaultKind::kExplodedNorm, upload, round_start, rng);
  EXPECT_TRUE(nn::all_finite(upload));
  EXPECT_GT(nn::l2_norm(upload), 1e5 * before);
}

TEST(ApplyCorruptionTest, StaleUpdateEchoesRoundStart) {
  auto upload = make_state(1.0f);
  const auto round_start = make_state(0.0f);
  Rng rng(11);
  apply_corruption(FaultKind::kStaleUpdate, upload, round_start, rng);
  EXPECT_NEAR(nn::l2_norm(nn::subtract(upload, round_start)), 0.0, 0.0);
}

TEST(ApplyCorruptionTest, BenignKindsAreNoOps) {
  for (const FaultKind kind : {FaultKind::kNone, FaultKind::kCrash, FaultKind::kStraggler}) {
    auto upload = make_state(1.0f);
    const auto untouched = make_state(1.0f);
    const auto round_start = make_state(0.0f);
    Rng rng(11);
    apply_corruption(kind, upload, round_start, rng);
    EXPECT_NEAR(nn::l2_norm(nn::subtract(upload, untouched)), 0.0, 0.0);
  }
}

TEST(DefenseConfigTest, ValidateRejectsBadSettings) {
  DefenseConfig ok;
  EXPECT_NO_THROW(ok.validate());
  DefenseConfig attempts;
  attempts.max_round_attempts = 0;
  EXPECT_THROW(attempts.validate(), std::invalid_argument);
  DefenseConfig quorum;
  quorum.min_quorum = 1.5f;
  EXPECT_THROW(quorum.validate(), std::invalid_argument);
  quorum.min_quorum = -0.5f;
  EXPECT_THROW(quorum.validate(), std::invalid_argument);
  DefenseConfig outlier;
  outlier.norm_outlier_multiplier = -1.0f;
  EXPECT_THROW(outlier.validate(), std::invalid_argument);
  DefenseConfig backoff;
  backoff.retry_backoff_seconds = std::nanf("");
  EXPECT_THROW(backoff.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::fl
