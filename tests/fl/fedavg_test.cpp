#include <gtest/gtest.h>

#include <set>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::fl {
namespace {

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  spec.noise = 0.3f;
  spec.max_shift = 1;
  spec.seed = 9;
  return spec;
}

nn::ConvNetConfig tiny_net() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 8;
  cfg.depth = 1;
  return cfg;
}

struct Fixture {
  data::TrainTest tt = data::make_synthetic(tiny_spec());
  std::vector<data::Dataset> clients;
  ModelFactory factory;
  std::unique_ptr<nn::Module> scratch;

  Fixture() {
    Rng prng(1);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 3, prng));
    auto shared_rng = std::make_shared<Rng>(11);
    factory = [rng = shared_rng]() { return nn::make_convnet(tiny_net(), *rng); };
    scratch = factory();
  }
};

TEST(SgdLocalUpdateTest, ReducesLoss) {
  Fixture f;
  const double before = metrics::mean_loss(*f.scratch, f.tt.train);
  SgdLocalUpdate update(10, 16, 0.1f);
  CostMeter cost;
  Rng rng(3);
  update.run(*f.scratch, f.tt.train, 0, 0, rng, cost);
  EXPECT_LT(metrics::mean_loss(*f.scratch, f.tt.train), before);
  EXPECT_EQ(cost.sample_grads, 10 * 16);
}

TEST(SgdLocalUpdateTest, AscentIncreasesLoss) {
  Fixture f;
  // First descend a bit so ascent has somewhere to go.
  SgdLocalUpdate descend(20, 16, 0.1f);
  CostMeter cost;
  Rng rng(3);
  descend.run(*f.scratch, f.tt.train, 0, 0, rng, cost);
  const double mid = metrics::mean_loss(*f.scratch, f.tt.train);
  SgdLocalUpdate ascend(10, 16, 0.1f, nn::UpdateDirection::kAscent);
  ascend.run(*f.scratch, f.tt.train, 0, 0, rng, cost);
  EXPECT_GT(metrics::mean_loss(*f.scratch, f.tt.train), mid);
}

TEST(SgdLocalUpdateTest, EmptyDatasetIsNoOp) {
  Fixture f;
  const auto before = nn::state_of(*f.scratch);
  SgdLocalUpdate update(5, 16, 0.1f);
  CostMeter cost;
  Rng rng(3);
  const data::Dataset empty(f.tt.train.image_shape(), f.tt.train.num_classes());
  update.run(*f.scratch, empty, 0, 0, rng, cost);
  EXPECT_DOUBLE_EQ(nn::l2_norm(nn::subtract(nn::state_of(*f.scratch), before)), 0.0);
  EXPECT_EQ(cost.sample_grads, 0);
}

TEST(SgdLocalUpdateTest, Validation) {
  EXPECT_THROW(SgdLocalUpdate(0, 16, 0.1f), std::invalid_argument);
  EXPECT_THROW(SgdLocalUpdate(5, 0, 0.1f), std::invalid_argument);
  EXPECT_THROW(SgdLocalUpdate(5, 16, 0.0f), std::invalid_argument);
}

TEST(FedAvgTest, TrainingImprovesAccuracy) {
  Fixture f;
  SgdLocalUpdate update(5, 16, 0.1f);
  FedAvgConfig cfg{.rounds = 8, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  const auto state = run_fedavg(*f.scratch, nn::state_of(*f.scratch), f.clients, update, cfg,
                                rng, cost);
  nn::load_state(*f.scratch, state);
  EXPECT_GT(metrics::accuracy(*f.scratch, f.tt.test), 0.75);
  EXPECT_EQ(cost.rounds, 8);
  EXPECT_EQ(cost.sample_grads, 8 * 3 * 5 * 16);
}

TEST(FedAvgTest, RoundCallbackFires) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  std::vector<int> rounds;
  run_fedavg(*f.scratch, nn::state_of(*f.scratch), f.clients, update, cfg, rng, cost,
             [&](int round, const nn::ModelState&) { rounds.push_back(round); });
  EXPECT_EQ(rounds, (std::vector<int>{0, 1, 2}));
}

TEST(FedAvgTest, ClientCallbackSeesAllClients) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 2, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  int calls = 0;
  run_fedavg(*f.scratch, nn::state_of(*f.scratch), f.clients, update, cfg, rng, cost, {},
             [&](int round, int client, const nn::ModelState& local,
                 const nn::ModelState& global) {
               (void)round;
               (void)client;
               EXPECT_EQ(local.size(), global.size());
               ++calls;
             });
  EXPECT_EQ(calls, 2 * 3);
}

TEST(FedAvgTest, PartialParticipationSamplesSubset) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 4, .participation = 0.34f};  // 1 of 3 clients
  CostMeter cost;
  Rng rng(5);
  std::set<int> seen;
  run_fedavg(*f.scratch, nn::state_of(*f.scratch), f.clients, update, cfg, rng, cost, {},
             [&](int, int client, const nn::ModelState&, const nn::ModelState&) {
               seen.insert(client);
             });
  // 1 client per round.
  EXPECT_EQ(cost.sample_grads, 4 * 1 * 1 * 8);
  EXPECT_GE(seen.size(), 1u);
}

TEST(FedAvgTest, SkipsEmptyClients) {
  Fixture f;
  std::vector<data::Dataset> clients = f.clients;
  clients.push_back(data::Dataset(f.tt.train.image_shape(), f.tt.train.num_classes()));
  SgdLocalUpdate update(1, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 1, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  std::set<int> seen;
  run_fedavg(*f.scratch, nn::state_of(*f.scratch), clients, update, cfg, rng, cost, {},
             [&](int, int client, const nn::ModelState&, const nn::ModelState&) {
               seen.insert(client);
             });
  EXPECT_EQ(seen.count(3), 0u);
}

TEST(FedAvgTest, AllEmptyThrows) {
  Fixture f;
  std::vector<data::Dataset> clients(2,
                                     data::Dataset(f.tt.train.image_shape(), 3));
  SgdLocalUpdate update(1, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 1, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  EXPECT_THROW(
      run_fedavg(*f.scratch, nn::state_of(*f.scratch), clients, update, cfg, rng, cost),
      std::invalid_argument);
}

TEST(FedAvgTest, ConfigValidation) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  CostMeter cost;
  Rng rng(5);
  FedAvgConfig bad{.rounds = 1, .participation = 0.0f};
  EXPECT_THROW(
      run_fedavg(*f.scratch, nn::state_of(*f.scratch), f.clients, update, bad, rng, cost),
      std::invalid_argument);
}

TEST(FedAvgTest, SingleIdenticalClientActsLikeLocalTraining) {
  // With one client, FedAvg == that client's local result.
  Fixture f;
  SgdLocalUpdate update(3, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 1, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  const auto init = nn::state_of(*f.scratch);
  std::vector<data::Dataset> one = {f.clients[0]};
  const auto fed_state = run_fedavg(*f.scratch, init, one, update, cfg, rng, cost);

  // Replay manually with the same RNG derivation.
  nn::load_state(*f.scratch, init);
  Rng rng2(5);
  Rng client_rng = rng2.split(0ULL * 100003ULL + 0ULL);
  CostMeter cost2;
  update.run(*f.scratch, f.clients[0], 0, 0, client_rng, cost2);
  const auto manual = nn::state_of(*f.scratch);
  EXPECT_NEAR(nn::l2_norm(nn::subtract(fed_state, manual)), 0.0, 1e-6);
}

TEST(CostMeterTest, Accumulates) {
  CostMeter a, b;
  a.add_training(10);
  a.add_distillation(5);
  a.add_exchange(100, 200);
  b.add_training(1);
  b.rounds = 2;
  b.add_exchange(1, 2);
  a += b;
  EXPECT_EQ(a.sample_grads, 11);
  EXPECT_EQ(a.distill_sample_grads, 5);
  EXPECT_EQ(a.total(), 16);
  EXPECT_EQ(a.rounds, 2);
  EXPECT_EQ(a.bytes_up, 101);
  EXPECT_EQ(a.bytes_down, 202);
  EXPECT_EQ(a.total_bytes(), 303);
}

TEST(FedAvgTest, CommunicationAccounting) {
  Fixture f;
  SgdLocalUpdate update(1, 8, 0.1f);
  FedAvgConfig cfg{.rounds = 2, .participation = 1.0f};
  CostMeter cost;
  Rng rng(5);
  run_fedavg(*f.scratch, nn::state_of(*f.scratch), f.clients, update, cfg, rng, cost);
  const auto model_bytes = nn::state_bytes(nn::state_of(*f.scratch));
  // 2 rounds x 3 clients, one model up and one down per client per round.
  EXPECT_EQ(cost.bytes_up, 2 * 3 * model_bytes);
  EXPECT_EQ(cost.bytes_down, 2 * 3 * model_bytes);
}

TEST(FedAvgTest, TotalSamples) {
  Fixture f;
  EXPECT_EQ(total_samples(f.clients), 60);
}

}  // namespace
}  // namespace quickdrop::fl
