// Quantized client-update transport (fl/quantize.h): codec round-trips and
// error bounds, the layout-hash-gated wire framing, malformed-frame
// rejection, the ≤30% byte budget, and end-to-end determinism of quantized
// federated rounds (including quarantine of corrupted uploads riding raw
// blocks).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "fl/quantize.h"
#include "nn/convnet.h"
#include "nn/state.h"

namespace quickdrop::fl {
namespace {

using quickdrop::Shape;
using quickdrop::nn::ModelState;
using quickdrop::nn::StateLayout;

float synth_value(std::int64_t i, float scale) {
  return scale * (0.001f * static_cast<float>((i * 2654435761LL) % 2003) - 1.0f);
}

ModelState make_state(const std::vector<Shape>& shapes, float scale) {
  auto layout = StateLayout::of_shapes(shapes);
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = synth_value(static_cast<std::int64_t>(i), scale);
  }
  return {std::move(layout), std::move(values)};
}

// Spans multiple kQuantBlock blocks with a ragged tail.
const std::vector<Shape> kShapes = {{16, 3, 3, 3}, {16}, {40, 173}, {173}};

double block_amax(const ModelState& s, std::int64_t lo, std::int64_t len) {
  double amax = 0.0;
  for (std::int64_t i = lo; i < lo + len; ++i) {
    amax = std::max(amax, std::fabs(static_cast<double>(s.at(i))));
  }
  return amax;
}

TEST(QuantizeCodec, CodecNames) {
  EXPECT_EQ(codec_from_string("off"), Codec::kNone);
  EXPECT_EQ(codec_from_string("none"), Codec::kNone);
  EXPECT_EQ(codec_from_string("int8"), Codec::kInt8);
  EXPECT_EQ(codec_from_string("bf16"), Codec::kBf16);
  EXPECT_THROW(codec_from_string("fp8"), std::invalid_argument);
  EXPECT_STREQ(codec_name(Codec::kInt8), "int8");
  EXPECT_STREQ(codec_name(Codec::kBf16), "bf16");
  EXPECT_STREQ(codec_name(Codec::kNone), "off");
}

TEST(QuantizeCodec, Int8RoundTripWithinHalfStep) {
  const ModelState delta = make_state(kShapes, 0.02f);
  const auto wire = encode_delta(delta, Codec::kInt8);
  const ModelState back = decode_delta(wire, delta.layout());
  ASSERT_EQ(back.numel(), delta.numel());
  for (std::int64_t lo = 0; lo < delta.numel(); lo += kQuantBlock) {
    const std::int64_t len = std::min(delta.numel() - lo, kQuantBlock);
    // Symmetric per-block scale: every value is within half a quantization
    // step of the original (plus fp32 representation slack on the product).
    const double step = block_amax(delta, lo, len) / 127.0;
    for (std::int64_t i = lo; i < lo + len; ++i) {
      EXPECT_NEAR(back.at(i), delta.at(i), 0.5 * step + 1e-7)
          << "int8 error bound violated at " << i;
    }
  }
}

TEST(QuantizeCodec, Bf16RoundTripWithinMantissaStep) {
  const ModelState delta = make_state(kShapes, 0.02f);
  const auto wire = encode_delta(delta, Codec::kBf16);
  const ModelState back = decode_delta(wire, delta.layout());
  for (std::int64_t i = 0; i < delta.numel(); ++i) {
    // bf16 keeps 8 mantissa bits: round-to-nearest error <= 2^-9 relative.
    const double tol = std::fabs(static_cast<double>(delta.at(i))) * 0x1p-8 + 1e-38;
    EXPECT_NEAR(back.at(i), delta.at(i), tol) << "bf16 error bound violated at " << i;
  }
}

TEST(QuantizeCodec, EncodingIsDeterministic) {
  const ModelState delta = make_state(kShapes, 0.02f);
  for (const Codec codec : {Codec::kInt8, Codec::kBf16}) {
    EXPECT_EQ(encode_delta(delta, codec), encode_delta(delta, codec));
  }
}

TEST(QuantizeCodec, AllZeroDeltaCollapsesToTagBytes) {
  auto layout = StateLayout::of_shapes(kShapes);
  const auto n = layout->total();
  const ModelState delta{layout, std::vector<float>(static_cast<std::size_t>(n), 0.0f)};
  const auto wire = encode_delta(delta, Codec::kInt8);
  // Header (8+8+1+8) plus one tag byte per block, no payload.
  const auto blocks = static_cast<std::size_t>((n + kQuantBlock - 1) / kQuantBlock);
  EXPECT_EQ(wire.size(), 25 + blocks);
  const ModelState back = decode_delta(wire, delta.layout());
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(back.at(i), 0.0f);
}

TEST(QuantizeCodec, NonFiniteBlocksShipBitExactRaw) {
  ModelState delta = make_state(kShapes, 0.02f);
  const auto d = delta.data();
  d[3] = std::numeric_limits<float>::quiet_NaN();
  d[7] = -std::numeric_limits<float>::infinity();
  for (const Codec codec : {Codec::kInt8, Codec::kBf16}) {
    const ModelState back = decode_delta(encode_delta(delta, codec), delta.layout());
    // The whole first block rides raw: bit-exact, corruption included, so
    // server-side validation still sees it.
    for (std::int64_t i = 0; i < std::min<std::int64_t>(kQuantBlock, delta.numel()); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(back.at(i)),
                std::bit_cast<std::uint32_t>(delta.at(i)));
    }
  }
}

TEST(QuantizeCodec, Int8WireIsAtMostThirtyPercentOfFp32) {
  const ModelState delta = make_state(kShapes, 0.02f);
  const auto wire = encode_delta(delta, Codec::kInt8);
  const auto fp32_bytes = static_cast<std::size_t>(nn::state_bytes(delta));
  EXPECT_LE(wire.size(), (fp32_bytes * 30) / 100)
      << "int8 transport must cut bytes to <=30% of raw fp32";
}

TEST(QuantizeCodec, RejectsEmptyStateAndNoneCodec) {
  EXPECT_THROW(encode_delta(ModelState{}, Codec::kInt8), std::invalid_argument);
  const ModelState delta = make_state(kShapes, 0.02f);
  EXPECT_THROW(encode_delta(delta, Codec::kNone), std::invalid_argument);
}

TEST(QuantizeCodec, DecodeRejectsLayoutMismatch) {
  const ModelState delta = make_state(kShapes, 0.02f);
  const auto wire = encode_delta(delta, Codec::kInt8);
  const auto other = StateLayout::of_shapes({{7, 7}, {7}});
  EXPECT_THROW(decode_delta(wire, other), nn::StateError);
  EXPECT_THROW(decode_delta(wire, nullptr), nn::StateError);
}

TEST(QuantizeCodec, DecodeRejectsMalformedFrames) {
  const ModelState delta = make_state(kShapes, 0.02f);
  auto wire = encode_delta(delta, Codec::kInt8);

  auto truncated = wire;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(decode_delta(truncated, delta.layout()), nn::StateError);

  auto extended = wire;
  extended.push_back(0);
  EXPECT_THROW(decode_delta(extended, delta.layout()), nn::StateError);

  auto bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_delta(bad_magic, delta.layout()), nn::StateError);

  auto bad_tag = wire;
  bad_tag[25] = 0xEE;  // first block tag
  EXPECT_THROW(decode_delta(bad_tag, delta.layout()), nn::StateError);

  EXPECT_THROW(decode_delta(std::vector<std::uint8_t>{}, delta.layout()), nn::StateError);
}

// ---------------------------------------------------------------------------
// End-to-end: quantized transport through the federated engine.
// ---------------------------------------------------------------------------

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 12;
  spec.test_per_class = 6;
  spec.noise = 0.3f;
  spec.max_shift = 1;
  spec.seed = 9;
  return spec;
}

nn::ConvNetConfig tiny_net() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 8;
  cfg.depth = 1;
  return cfg;
}

struct Federation {
  data::TrainTest tt = data::make_synthetic(tiny_spec());
  std::vector<data::Dataset> clients;
  std::unique_ptr<nn::Module> scratch;
  nn::ModelState init;

  Federation() {
    Rng prng(1);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 3, prng));
    Rng model_rng(11);
    scratch = nn::make_convnet(tiny_net(), model_rng);
    init = nn::state_of(*scratch);  // scratch is overwritten by every run
  }

  nn::ModelState run(const FedAvgConfig& cfg, CostMeter& cost, std::uint64_t seed) {
    SgdLocalUpdate update(2, 8, 0.1f);
    Rng rng(seed);
    return run_fedavg(*scratch, init, clients, update, cfg, rng, cost);
  }
};

TEST(QuantizedTransport, RunsAreBitwiseDeterministic) {
  Federation f;
  FedAvgConfig cfg{.rounds = 3, .participation = 1.0f};
  cfg.transport.codec = Codec::kInt8;
  CostMeter c1, c2;
  const auto s1 = f.run(cfg, c1, 5);
  const auto s2 = f.run(cfg, c2, 5);
  ASSERT_EQ(s1.numel(), s2.numel());
  for (std::int64_t i = 0; i < s1.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(s1.at(i)), std::bit_cast<std::uint32_t>(s2.at(i)))
        << "quantized federated run diverges at " << i;
  }
  EXPECT_EQ(c1.bytes_up, c2.bytes_up);
}

TEST(QuantizedTransport, CutsUploadBytes) {
  Federation f;
  FedAvgConfig cfg{.rounds = 2, .participation = 1.0f};
  CostMeter raw_cost;
  f.run(cfg, raw_cost, 5);
  cfg.transport.codec = Codec::kInt8;
  CostMeter q_cost;
  f.run(cfg, q_cost, 5);
  EXPECT_GT(raw_cost.bytes_up, 0);
  EXPECT_LE(q_cost.bytes_up, (raw_cost.bytes_up * 30) / 100)
      << "quantized upload bytes must be <=30% of fp32 transport";
  // Downloads (global state broadcast) are unchanged.
  EXPECT_EQ(raw_cost.bytes_down, q_cost.bytes_down);
}

TEST(QuantizedTransport, CorruptedUploadsStillQuarantined) {
  Federation f;
  FedAvgConfig cfg{.rounds = 4, .participation = 1.0f};
  cfg.transport.codec = Codec::kInt8;
  FaultRates rates;
  rates.corrupt_nan = 0.5f;
  cfg.faults = FaultPlan(77, rates);
  cfg.defense.validate_finite = true;
  CostMeter cost;
  const auto state = f.run(cfg, cost, 5);
  // Raw blocks carried the NaNs across the wire bit-exactly, so validation
  // quarantined them; the aggregate stays finite.
  EXPECT_GT(cost.quarantined_updates, 0);
  EXPECT_TRUE(nn::all_finite(state));
}

}  // namespace
}  // namespace quickdrop::fl
