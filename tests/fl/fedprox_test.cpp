#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/client_update.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "nn/state.h"

namespace quickdrop::fl {
namespace {

data::TrainTest tiny_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  spec.noise = 0.3f;
  spec.seed = 95;
  return data::make_synthetic(spec);
}

std::unique_ptr<nn::Sequential> tiny_net() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 8;
  cfg.depth = 1;
  Rng rng(96);
  return nn::make_convnet(cfg, rng);
}

TEST(FedProxTest, ReducesLoss) {
  const auto tt = tiny_data();
  auto model = tiny_net();
  const double before = metrics::mean_loss(*model, tt.train);
  FedProxLocalUpdate update(10, 16, 0.1f, 0.01f);
  CostMeter cost;
  Rng rng(1);
  update.run(*model, tt.train, 0, 0, rng, cost);
  EXPECT_LT(metrics::mean_loss(*model, tt.train), before);
  EXPECT_EQ(cost.sample_grads, 10 * 16);
}

TEST(FedProxTest, ZeroMuMatchesPlainSgd) {
  const auto tt = tiny_data();
  auto a = tiny_net();
  auto b = tiny_net();
  nn::load_state(*b, nn::state_of(*a));  // identical start

  FedProxLocalUpdate prox(5, 16, 0.1f, 0.0f);
  SgdLocalUpdate plain(5, 16, 0.1f);
  CostMeter cost;
  Rng rng1(7), rng2(7);
  prox.run(*a, tt.train, 0, 0, rng1, cost);
  plain.run(*b, tt.train, 0, 0, rng2, cost);
  EXPECT_NEAR(nn::l2_norm(nn::subtract(nn::state_of(*a), nn::state_of(*b))), 0.0, 1e-9);
}

TEST(FedProxTest, LargeMuAnchorsToGlobal) {
  const auto tt = tiny_data();
  auto free_model = tiny_net();
  auto anchored = tiny_net();
  nn::load_state(*anchored, nn::state_of(*free_model));
  const auto start = nn::state_of(*free_model);

  FedProxLocalUpdate loose(10, 16, 0.05f, 0.0f);
  FedProxLocalUpdate tight(10, 16, 0.05f, 10.0f);
  CostMeter cost;
  Rng rng1(9), rng2(9);
  loose.run(*free_model, tt.train, 0, 0, rng1, cost);
  tight.run(*anchored, tt.train, 0, 0, rng2, cost);
  const double drift_loose = nn::l2_norm(nn::subtract(nn::state_of(*free_model), start));
  const double drift_tight = nn::l2_norm(nn::subtract(nn::state_of(*anchored), start));
  EXPECT_LT(drift_tight, 0.5 * drift_loose);
}

TEST(FedProxTest, Validation) {
  EXPECT_THROW(FedProxLocalUpdate(0, 16, 0.1f, 0.1f), std::invalid_argument);
  EXPECT_THROW(FedProxLocalUpdate(5, 16, 0.1f, -0.1f), std::invalid_argument);
}

TEST(FedProxTest, EmptyDatasetIsNoOp) {
  auto model = tiny_net();
  const auto before = nn::state_of(*model);
  FedProxLocalUpdate update(5, 16, 0.1f, 0.1f);
  CostMeter cost;
  Rng rng(1);
  const data::Dataset empty(Shape{1, 8, 8}, 3);
  update.run(*model, empty, 0, 0, rng, cost);
  EXPECT_NEAR(nn::l2_norm(nn::subtract(nn::state_of(*model), before)), 0.0, 1e-12);
}

}  // namespace
}  // namespace quickdrop::fl
