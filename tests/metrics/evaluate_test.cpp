#include <gtest/gtest.h>

#include <cmath>

#include "metrics/evaluate.h"

namespace quickdrop::metrics {
namespace {

/// A deterministic "model" whose logit for class c is high iff the image's
/// first pixel encodes c — lets us compute expected metrics by hand.
class OracleModel final : public nn::Module {
 public:
  ag::Var forward(const ag::Var& input) override {
    const auto& s = input.shape();
    const std::int64_t n = s[0];
    const std::int64_t stride = input.value().numel() / n;
    Tensor logits({n, 3});
    for (std::int64_t i = 0; i < n; ++i) {
      const int c = static_cast<int>(input.value().at(i * stride));
      for (int j = 0; j < 3; ++j) logits.at(i * 3 + j) = j == c ? 4.0f : 0.0f;
    }
    return ag::Var::constant(logits);
  }
  void collect_parameters(std::vector<ag::Var>&) override {}
};

data::Dataset encoded_dataset(const std::vector<int>& encoded, const std::vector<int>& labels) {
  Tensor images({static_cast<std::int64_t>(encoded.size()), 1, 2, 2});
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    images.at(static_cast<std::int64_t>(i) * 4) = static_cast<float>(encoded[i]);
  }
  return data::Dataset(std::move(images), labels, 3);
}

TEST(EvaluateTest, AccuracyExact) {
  OracleModel model;
  // Predictions: 0,1,2,0 ; labels: 0,1,1,2 -> 2/4 correct.
  const auto d = encoded_dataset({0, 1, 2, 0}, {0, 1, 1, 2});
  EXPECT_DOUBLE_EQ(accuracy(model, d), 0.5);
}

TEST(EvaluateTest, EmptyDatasetIsZero) {
  OracleModel model;
  const data::Dataset d(Shape{1, 2, 2}, 3);
  EXPECT_DOUBLE_EQ(accuracy(model, d), 0.0);
}

TEST(EvaluateTest, PerClassAccuracy) {
  OracleModel model;
  const auto d = encoded_dataset({0, 0, 1, 2}, {0, 1, 1, 1});
  const auto pc = per_class_accuracy(model, d);
  EXPECT_DOUBLE_EQ(pc[0], 1.0);            // one class-0 sample, predicted 0
  EXPECT_NEAR(pc[1], 1.0 / 3.0, 1e-12);    // of three class-1 samples, one hit
  EXPECT_DOUBLE_EQ(pc[2], 0.0);            // class 2 absent -> 0
}

TEST(EvaluateTest, ClassFilters) {
  OracleModel model;
  const auto d = encoded_dataset({0, 1, 2, 2}, {0, 1, 2, 0});
  EXPECT_DOUBLE_EQ(accuracy_on_classes(model, d, {0}), 0.5);
  EXPECT_DOUBLE_EQ(accuracy_excluding_classes(model, d, {0}), 1.0);
}

TEST(EvaluateTest, AccuracyOnIndices) {
  OracleModel model;
  const auto d = encoded_dataset({0, 1, 2, 0}, {0, 1, 1, 2});
  EXPECT_DOUBLE_EQ(accuracy_on_indices(model, d, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy_on_indices(model, d, {2, 3}), 0.0);
}

TEST(EvaluateTest, MeanLossMatchesHandComputation) {
  OracleModel model;
  const auto d = encoded_dataset({0}, {0});
  // logits (4,0,0): p0 = e^4/(e^4+2); loss = -log p0.
  const double p0 = std::exp(4.0) / (std::exp(4.0) + 2.0);
  EXPECT_NEAR(mean_loss(model, d), -std::log(p0), 1e-5);
}

TEST(EvaluateTest, SoftmaxProbabilitiesSumToOne) {
  OracleModel model;
  const auto d = encoded_dataset({0, 1}, {0, 1});
  const auto p = softmax_probabilities(model, d, {0, 1});
  for (int i = 0; i < 2; ++i) {
    double row = 0;
    for (int j = 0; j < 3; ++j) row += p.at(i * 3 + j);
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
  EXPECT_GT(p.at(0), 0.9);  // confident on the encoded class
}

TEST(EvaluateTest, BatchingDoesNotChangeResult) {
  OracleModel model;
  const auto d = encoded_dataset({0, 1, 2, 0, 1}, {0, 1, 2, 1, 1});
  EXPECT_DOUBLE_EQ(accuracy(model, d, 2), accuracy(model, d, 128));
}

}  // namespace
}  // namespace quickdrop::metrics
