// Tests every unlearning method on a miniature federation: each must erase
// the target's accuracy while keeping the retain accuracy useful.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/federaser.h"
#include "baselines/fump.h"
#include "baselines/quickdrop_method.h"
#include "baselines/registry.h"
#include "baselines/simple_methods.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::baselines {
namespace {

struct MiniWorld {
  TrainedFederation fed;
  std::unique_ptr<nn::Module> eval_model;

  MiniWorld() : fed(build()) { eval_model = fed.factory(); }

  static TrainedFederation build() {
    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.channels = 1;
    spec.image_size = 8;
    spec.train_per_class = 40;
    spec.test_per_class = 10;
    spec.noise = 0.35f;
    spec.seed = 41;
    auto tt = data::make_synthetic(spec);
    Rng prng(13);
    auto clients =
        data::materialize(tt.train, data::dirichlet_partition(tt.train, 4, 0.5f, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(23);
    fl::ModelFactory factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };

    HarnessConfig hcfg;
    hcfg.quickdrop.fl_rounds = 20;
    hcfg.quickdrop.local_steps = 6;
    hcfg.quickdrop.batch_size = 16;
    hcfg.quickdrop.train_lr = 0.1f;
    hcfg.quickdrop.scale = 10;
    hcfg.quickdrop.unlearn_lr = 0.05f;
    hcfg.quickdrop.recover_lr = 0.05f;
    hcfg.eraser_interval = 2;
    return train_federation(factory, std::move(clients), std::move(tt.test), hcfg);
  }

  BaselineConfig config() const {
    BaselineConfig cfg;
    cfg.train_lr = 0.1f;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    cfg.relearn_lr = 0.05f;  // proportional to the fixture's high train lr
    cfg.local_steps = 6;
    cfg.batch_size = 16;
    cfg.retrain_rounds = 20;
    // The tiny ConvNet has one conv block, so FU-MP must prune aggressively
    // to silence a class.
    cfg.fump_prune_ratio = 0.5f;
    cfg.fump_recovery_rounds = 4;
    return cfg;
  }

  /// The class the trained model knows best — the meaningful unlearning
  /// target on a tiny non-IID federation.
  int best_class() {
    nn::load_state(*eval_model, fed.global);
    const auto pc = metrics::per_class_accuracy(*eval_model, fed.test);
    return static_cast<int>(std::max_element(pc.begin(), pc.end()) - pc.begin());
  }

  double acc_class(const nn::ModelState& s, int c) {
    nn::load_state(*eval_model, s);
    return metrics::accuracy_on_classes(*eval_model, fed.test, {c});
  }
  double acc_excluding(const nn::ModelState& s, int c) {
    nn::load_state(*eval_model, s);
    return metrics::accuracy_excluding_classes(*eval_model, fed.test, {c});
  }
};

TEST(HarnessTest, TrainedModelIsAccurate) {
  MiniWorld w;
  nn::load_state(*w.eval_model, w.fed.global);
  EXPECT_GT(metrics::accuracy(*w.eval_model, w.fed.test), 0.7);
}

TEST(HarnessTest, HistoryRecorded) {
  MiniWorld w;
  const auto& h = w.fed.history;
  EXPECT_EQ(h.rounds.size(), 10u);  // rounds 0,2,...,18 at interval 2
  EXPECT_EQ(h.rounds.front(), 0);
  ASSERT_EQ(h.updates.size(), h.rounds.size());
  for (const auto& round : h.updates) {
    EXPECT_EQ(round.size(), 4u);
    for (const auto& u : round) EXPECT_FALSE(u.empty());
  }
  EXPECT_GT(h.byte_size(), 0);
}

TEST(HarnessTest, OriginalSplitsClassLevel) {
  MiniWorld w;
  const auto req = core::UnlearningRequest::for_class(2);
  const auto forget = original_forget(w.fed, req);
  const auto retain = original_retain(w.fed, req);
  for (std::size_t i = 0; i < forget.size(); ++i) {
    for (int r = 0; r < forget[i].size(); ++r) EXPECT_EQ(forget[i].label(r), 2);
    for (int r = 0; r < retain[i].size(); ++r) EXPECT_NE(retain[i].label(r), 2);
    EXPECT_EQ(forget[i].size() + retain[i].size(), w.fed.client_train()[i].size());
  }
}

TEST(HarnessTest, OriginalSplitsClientLevel) {
  MiniWorld w;
  const auto req = core::UnlearningRequest::for_client(1);
  const auto forget = original_forget(w.fed, req);
  const auto retain = original_retain(w.fed, req);
  EXPECT_EQ(forget[1].size(), w.fed.client_train()[1].size());
  EXPECT_EQ(retain[1].size(), 0);
  EXPECT_EQ(forget[0].size(), 0);
  EXPECT_EQ(retain[0].size(), w.fed.client_train()[0].size());
}

class ClassMethodSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassMethodSweep, ErasesClassKeepsRest) {
  MiniWorld w;
  auto method = make_method(GetParam(), w.config());
  ASSERT_TRUE(method->supports(core::UnlearningRequest::Kind::kClass));
  const int target = w.best_class();
  const double rset_before = w.acc_excluding(w.fed.global, target);
  ASSERT_GT(w.acc_class(w.fed.global, target), 0.5);

  const auto out = method->unlearn(w.fed, core::UnlearningRequest::for_class(target));
  EXPECT_LT(w.acc_class(out.state, target), 0.3) << GetParam();
  EXPECT_GT(w.acc_excluding(out.state, target), rset_before - 0.3) << GetParam();
  EXPECT_GT(out.unlearn.seconds, 0.0);
  EXPECT_GT(out.unlearn.data_size, 0);
}

INSTANTIATE_TEST_SUITE_P(AllClassMethods, ClassMethodSweep,
                         ::testing::Values("Retrain-Or", "SGA-Or", "FedEraser", "FU-MP",
                                           "QuickDrop"));

TEST(S2UTest, ClientUnlearningOnly) {
  MiniWorld w;
  S2U s2u(w.config());
  EXPECT_FALSE(s2u.supports(core::UnlearningRequest::Kind::kClass));
  EXPECT_THROW(s2u.unlearn(w.fed, core::UnlearningRequest::for_class(0)),
               std::invalid_argument);
  const auto out = s2u.unlearn(w.fed, core::UnlearningRequest::for_client(0));
  nn::load_state(*w.eval_model, out.state);
  EXPECT_GT(metrics::accuracy(*w.eval_model, w.fed.test), 0.5);
}

TEST(FuMpTest, PruningZerosChannels) {
  MiniWorld w;
  FuMp fump(w.config());
  const auto out = fump.unlearn(w.fed, core::UnlearningRequest::for_class(1));
  // The after_unlearn state must contain at least one all-zero conv filter
  // row in the last conv layer (the first parameter tensor here, depth 1).
  const Tensor weight = out.after_unlearn.tensor(0);  // conv weight [F, C*k*k]
  int zero_rows = 0;
  const std::int64_t rows = weight.dim(0), cols = weight.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    bool all_zero = true;
    for (std::int64_t c = 0; c < cols && all_zero; ++c) all_zero = weight.at(r * cols + c) == 0.0f;
    zero_rows += all_zero;
  }
  EXPECT_GE(zero_rows, 1);
}

TEST(FuMpTest, ChannelScoresShape) {
  MiniWorld w;
  auto model = w.fed.factory();
  nn::load_state(*model, w.fed.global);
  const auto scores = FuMp::channel_scores(*model, w.fed, 8);
  ASSERT_EQ(scores.size(), 4u);
  EXPECT_EQ(scores[0].size(), 12u);  // one score per conv channel (width 12)
}

TEST(FuMpTest, CannotRelearn) {
  MiniWorld w;
  FuMp fump(w.config());
  EXPECT_FALSE(fump.supports_relearning());
  EXPECT_THROW(fump.relearn(w.fed, w.fed.global, core::UnlearningRequest::for_class(0), nullptr),
               std::logic_error);
}

TEST(RelearnTest, DefaultRelearnRestores) {
  MiniWorld w;
  SgaOriginal sga(w.config());
  const int target = w.best_class();
  const double before = w.acc_class(w.fed.global, target);
  const auto out = sga.unlearn(w.fed, core::UnlearningRequest::for_class(target));
  ASSERT_LT(w.acc_class(out.state, target), 0.3);
  StageReport report;
  const auto relearned =
      sga.relearn(w.fed, out.state, core::UnlearningRequest::for_class(target), &report);
  EXPECT_GT(w.acc_class(relearned, target), before - 0.35);
  EXPECT_GT(report.data_size, 0);
}

TEST(QuickDropMethodTest, RelearnUsesSyntheticData) {
  MiniWorld w;
  QuickDropMethod qd(w.config());
  const auto out = qd.unlearn(w.fed, core::UnlearningRequest::for_class(1));
  StageReport report;
  qd.relearn(w.fed, out.state, core::UnlearningRequest::for_class(1), &report);
  // Synthetic forget set is far smaller than the original class data.
  const auto original = original_forget(w.fed, core::UnlearningRequest::for_class(1));
  EXPECT_LT(report.data_size, fl::total_samples(original));
}

TEST(RegistryTest, NamesAndErrors) {
  const auto names = all_method_names();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_EQ(names.back(), "QuickDrop");
  BaselineConfig cfg;
  for (const auto& n : names) EXPECT_EQ(make_method(n, cfg)->name(), n);
  EXPECT_THROW(make_method("nope", cfg), std::invalid_argument);
}

TEST(RegistryTest, MethodsForKindFilters) {
  BaselineConfig cfg;
  const auto class_methods = methods_for(core::UnlearningRequest::Kind::kClass, cfg);
  for (const auto& m : class_methods) EXPECT_NE(m->name(), "S2U");
  const auto client_methods = methods_for(core::UnlearningRequest::Kind::kClient, cfg);
  for (const auto& m : client_methods) EXPECT_NE(m->name(), "FU-MP");
}

}  // namespace
}  // namespace quickdrop::baselines
