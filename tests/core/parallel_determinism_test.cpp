// End-to-end thread-count invariance: QuickDrop's distillation training, an
// unlearn/recover cycle, checkpoint/resume, and fault-plan runs must all
// produce bit-identical ModelStates (and synthetic stores) whether the global
// pool has 1, 2 or 8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/convnet.h"
#include "util/thread_pool.h"

namespace quickdrop::core {
namespace {

struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

data::TrainTest make_mini_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 32;
  spec.test_per_class = 8;
  spec.noise = 0.35f;
  spec.seed = 33;
  return data::make_synthetic(spec);
}

// A fresh federation per run: the factory's shared RNG must start at the same
// point for every thread count under comparison.
struct MiniFederation {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;

  MiniFederation() : tt(make_mini_data()) {
    Rng prng(7);
    clients = data::materialize(tt.train, data::dirichlet_partition(tt.train, 4, 0.5f, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(19);
    factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };
  }

  static QuickDropConfig config() {
    QuickDropConfig cfg;
    cfg.fl_rounds = 5;
    cfg.local_steps = 3;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 10;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    return cfg;
  }
};

void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b,
                                 const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << what << ": flat entry " << j;
  }
}

void expect_stores_bitwise_equal(const std::vector<SyntheticStore>& a,
                                 const std::vector<SyntheticStore>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].present_classes(), b[i].present_classes()) << "store " << i;
    for (const int c : a[i].present_classes()) {
      const Tensor& sa = a[i].class_samples(c);
      const Tensor& sb = b[i].class_samples(c);
      ASSERT_EQ(sa.numel(), sb.numel());
      for (std::int64_t j = 0; j < sa.numel(); ++j) {
        ASSERT_EQ(sa.at(j), sb.at(j)) << "store " << i << " class " << c << " entry " << j;
      }
    }
  }
}

// One complete train + unlearn(class 2) + recover cycle at `threads`.
struct CycleResult {
  nn::ModelState trained;
  nn::ModelState unlearned;
  std::vector<SyntheticStore> stores;
  std::int64_t train_sample_grads = 0;
  std::int64_t train_distill_grads = 0;
};

CycleResult run_cycle(QuickDropConfig cfg, int threads) {
  set_num_threads(threads);
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, cfg, 99);
  CycleResult out;
  out.trained = qd.train();
  out.unlearned = qd.unlearn(out.trained, UnlearningRequest::for_class(2));
  out.stores = qd.stores();
  out.train_sample_grads = qd.training_stats().cost.sample_grads;
  out.train_distill_grads = qd.training_stats().cost.distill_sample_grads;
  return out;
}

TEST(ParallelDeterminismTest, TrainAndUnlearnCycleBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const QuickDropConfig cfg = MiniFederation::config();
  const CycleResult serial = run_cycle(cfg, 1);
  ASSERT_GT(serial.train_distill_grads, 0);  // distillation actually ran
  for (const int t : {2, 8}) {
    const CycleResult parallel = run_cycle(cfg, t);
    expect_states_bitwise_equal(serial.trained, parallel.trained, "trained");
    expect_states_bitwise_equal(serial.unlearned, parallel.unlearned, "unlearned");
    // The distilled synthetic data itself is part of the contract: recovery
    // sets for later requests are built from it.
    expect_stores_bitwise_equal(serial.stores, parallel.stores);
    EXPECT_EQ(serial.train_sample_grads, parallel.train_sample_grads) << t;
    EXPECT_EQ(serial.train_distill_grads, parallel.train_distill_grads) << t;
  }
}

TEST(ParallelDeterminismTest, FaultPlanRunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  QuickDropConfig cfg = MiniFederation::config();
  cfg.fl_rounds = 4;
  fl::FaultRates rates;
  rates.crash = 0.15f;
  rates.corrupt_nan = 0.1f;
  rates.straggler = 0.1f;
  cfg.faults = fl::FaultPlan(77, rates);
  cfg.defense.min_quorum = 0.25f;
  cfg.defense.max_round_attempts = 2;
  const CycleResult serial = run_cycle(cfg, 1);
  const CycleResult parallel = run_cycle(cfg, 8);
  expect_states_bitwise_equal(serial.trained, parallel.trained, "trained under faults");
  expect_states_bitwise_equal(serial.unlearned, parallel.unlearned, "unlearned under faults");
  EXPECT_EQ(serial.train_sample_grads, parallel.train_sample_grads);
}

TEST(ParallelDeterminismTest, CheckpointResumeInvariantAcrossThreadCounts) {
  // Kill a 1-thread training run after round 2, restore the checkpoint into
  // a fresh coordinator running 8 threads: the spliced run must land on the
  // serial uninterrupted final state bitwise.
  ThreadGuard guard;
  const QuickDropConfig cfg = MiniFederation::config();

  set_num_threads(1);
  nn::ModelState final_full;
  {
    MiniFederation fed;
    QuickDrop qd(fed.factory, fed.clients, cfg, 99);
    final_full = qd.train();
  }

  std::vector<std::uint8_t> bytes;
  {
    MiniFederation fed;
    QuickDrop killed(fed.factory, fed.clients, cfg, 99);
    killed.train({}, {}, [&](int round, const nn::ModelState& g, const Rng& rng) {
      if (round != 2) return;
      auto cp = make_checkpoint(g, killed.stores());
      cp.cursor =
          RoundCursor{.phase = "train", .rounds_done = round + 1, .rng_state = rng.serialize()};
      bytes = serialize_checkpoint(cp);
    });
  }
  ASSERT_FALSE(bytes.empty());

  set_num_threads(8);
  MiniFederation fed;
  QuickDrop resumed(fed.factory, fed.clients, cfg, 99);
  const auto loaded = deserialize_checkpoint(bytes);
  ASSERT_TRUE(loaded.cursor.has_value());
  resumed.load_stores(restore_stores(loaded));
  TrainResume resume{.global = loaded.global,
                     .rounds_done = loaded.cursor->rounds_done,
                     .rng_state = loaded.cursor->rng_state};
  const auto final_resumed = resumed.train({}, {}, {}, &resume);
  expect_states_bitwise_equal(final_full, final_resumed, "resumed");
}

}  // namespace
}  // namespace quickdrop::core
