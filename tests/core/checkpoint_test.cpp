#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/checkpoint.h"
#include "core/quickdrop.h"
#include "data/synthetic.h"
#include "nn/convnet.h"

namespace quickdrop::core {
namespace {

struct Fixture {
  data::TrainTest tt;
  std::vector<SyntheticStore> stores;
  nn::ModelState global;

  Fixture() : tt(make_data()) {
    Rng rng(3);
    // Client 0 has all classes; client 1 misses class 0.
    stores.emplace_back(tt.train, 10, rng);
    std::vector<int> rows;
    for (int i = 0; i < tt.train.size(); ++i) {
      if (tt.train.label(i) != 0) rows.push_back(i);
    }
    stores.emplace_back(tt.train.subset(rows), 10, rng);
    nn::ConvNetConfig cfg;
    cfg.in_channels = 1;
    cfg.image_size = 8;
    cfg.width = 4;
    cfg.depth = 1;
    cfg.num_classes = 3;
    Rng mrng(5);
    auto model = nn::make_convnet(cfg, mrng);
    global = nn::state_of(*model);
  }

  static data::TrainTest make_data() {
    data::SyntheticSpec spec;
    spec.num_classes = 3;
    spec.channels = 1;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 2;
    spec.seed = 61;
    return data::make_synthetic(spec);
  }
};

void expect_stores_equal(const SyntheticStore& a, const SyntheticStore& b) {
  ASSERT_EQ(a.num_classes(), b.num_classes());
  ASSERT_EQ(a.image_shape(), b.image_shape());
  for (int c = 0; c < a.num_classes(); ++c) {
    ASSERT_EQ(a.has_class(c), b.has_class(c)) << "class " << c;
    if (!a.has_class(c)) continue;
    const auto& ta = a.class_samples(c);
    const auto& tb = b.class_samples(c);
    ASSERT_EQ(ta.shape(), tb.shape());
    for (std::int64_t i = 0; i < ta.numel(); ++i) EXPECT_FLOAT_EQ(ta.at(i), tb.at(i));
  }
}

TEST(CheckpointTest, MetadataRoundTrip) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  cp.metadata = {{"dataset", "cifar10"}, {"clients", "10"}, {"note", "hello world"}};
  const auto back = deserialize_checkpoint(serialize_checkpoint(cp));
  EXPECT_EQ(back.metadata, cp.metadata);
}

TEST(CheckpointTest, EmptyMetadataRoundTrip) {
  Fixture f;
  const auto cp = make_checkpoint(f.global, f.stores);
  const auto back = deserialize_checkpoint(serialize_checkpoint(cp));
  EXPECT_TRUE(back.metadata.empty());
}

TEST(CheckpointTest, SerializeRoundTrip) {
  Fixture f;
  const auto cp = make_checkpoint(f.global, f.stores);
  const auto bytes = serialize_checkpoint(cp);
  const auto back = deserialize_checkpoint(bytes);
  ASSERT_EQ(back.global.size(), f.global.size());
  ASSERT_EQ(back.global.numel(), f.global.numel());
  EXPECT_EQ(back.global.layout()->hash(), f.global.layout()->hash());
  for (std::int64_t j = 0; j < f.global.numel(); ++j) {
    EXPECT_FLOAT_EQ(back.global.at(j), f.global.at(j));
  }
  const auto stores = restore_stores(back);
  ASSERT_EQ(stores.size(), 2u);
  expect_stores_equal(stores[0], f.stores[0]);
  expect_stores_equal(stores[1], f.stores[1]);
}

TEST(CheckpointTest, AbsentClassSurvivesRoundTrip) {
  Fixture f;
  const auto cp = make_checkpoint(f.global, f.stores);
  const auto stores = restore_stores(deserialize_checkpoint(serialize_checkpoint(cp)));
  EXPECT_FALSE(stores[1].has_class(0));
  EXPECT_TRUE(stores[1].has_class(1));
}

TEST(CheckpointTest, AugmentationSurvivesRoundTrip) {
  Fixture f;
  const auto cp = make_checkpoint(f.global, f.stores);
  const auto stores = restore_stores(deserialize_checkpoint(serialize_checkpoint(cp)));
  const auto before = f.stores[0].augmentation({1});
  const auto after = stores[0].augmentation({1});
  ASSERT_EQ(before.size(), after.size());
  for (int i = 0; i < before.size(); ++i) {
    const auto a = before.image(i), b = after.image(i);
    for (std::int64_t j = 0; j < a.numel(); ++j) EXPECT_FLOAT_EQ(a.at(j), b.at(j));
  }
}

TEST(CheckpointTest, RejectsCorruptInput) {
  Fixture f;
  auto bytes = serialize_checkpoint(make_checkpoint(f.global, f.stores));
  EXPECT_THROW(deserialize_checkpoint(std::span(bytes.data(), bytes.size() - 3)),
               std::invalid_argument);
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_THROW(deserialize_checkpoint(bytes), std::invalid_argument);
}

TEST(CheckpointTest, TruncationDetectedAtAnyLength) {
  // A partially written file (killed process, full disk) must never parse.
  Fixture f;
  const auto bytes = serialize_checkpoint(make_checkpoint(f.global, f.stores));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, std::size_t{15}, std::size_t{16}, bytes.size() / 4,
        bytes.size() / 2, bytes.size() - 8, bytes.size() - 1}) {
    EXPECT_THROW(deserialize_checkpoint(std::span(bytes.data(), keep)), std::invalid_argument)
        << "prefix of " << keep << " bytes parsed";
  }
}

TEST(CheckpointTest, BitFlipAnywhereDetected) {
  // Bit flips inside the float payload are valid floats, so only the
  // trailing checksum can catch them.
  Fixture f;
  const auto original = serialize_checkpoint(make_checkpoint(f.global, f.stores));
  for (const std::size_t pos : {std::size_t{3}, original.size() / 3, original.size() / 2,
                                original.size() - 20, original.size() - 1}) {
    auto bytes = original;
    bytes[pos] ^= 0x10;
    EXPECT_THROW(deserialize_checkpoint(bytes), std::invalid_argument)
        << "flip at byte " << pos << " parsed";
  }
  EXPECT_NO_THROW(deserialize_checkpoint(original));
}

TEST(CheckpointTest, LoadCorruptFileThrows) {
  Fixture f;
  const std::string path = testing::TempDir() + "/qd_checkpoint_corrupt.bin";
  save_checkpoint(make_checkpoint(f.global, f.stores), path);
  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in), {});
  }();
  // Truncated file.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(path), std::invalid_argument);
  // Bit-flipped file.
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_checkpoint(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundCursorRoundTrip) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  cp.cursor = RoundCursor{.phase = "train", .rounds_done = 7, .rng_state = Rng(55).serialize()};
  const auto back = deserialize_checkpoint(serialize_checkpoint(cp));
  ASSERT_TRUE(back.cursor.has_value());
  EXPECT_EQ(back.cursor->phase, "train");
  EXPECT_EQ(back.cursor->rounds_done, 7);
  EXPECT_EQ(back.cursor->rng_state, cp.cursor->rng_state);
  // The restored RNG continues the exact stream.
  Rng a = Rng::deserialize(back.cursor->rng_state);
  Rng b(55);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CheckpointTest, CursorlessCheckpointHasNoCursor) {
  Fixture f;
  const auto back = deserialize_checkpoint(serialize_checkpoint(make_checkpoint(f.global, f.stores)));
  EXPECT_FALSE(back.cursor.has_value());
}

TEST(CheckpointTest, CursorWithBadRngStateRejected) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  cp.cursor = RoundCursor{.phase = "train", .rounds_done = 1, .rng_state = {1, 2, 3}};
  EXPECT_THROW(deserialize_checkpoint(serialize_checkpoint(cp)), std::invalid_argument);
}

TEST(CheckpointTest, FileRoundTrip) {
  Fixture f;
  const std::string path = testing::TempDir() + "/qd_checkpoint_test.bin";
  const auto cp = make_checkpoint(f.global, f.stores);
  save_checkpoint(cp, path);
  const auto loaded = load_checkpoint(path);
  const auto stores = restore_stores(loaded);
  expect_stores_equal(stores[0], f.stores[0]);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/qd.bin"), std::runtime_error);
}

TEST(CheckpointTest, FromPartsValidation) {
  EXPECT_THROW(SyntheticStore::from_parts({1, 8, 8}, 2, {}, {}), std::invalid_argument);
  std::vector<std::optional<Tensor>> synth(2), aug(2);
  synth[0] = Tensor({3, 2, 8, 8});  // wrong channel count vs image shape
  EXPECT_THROW(
      SyntheticStore::from_parts({1, 8, 8}, 2, std::move(synth), std::move(aug)),
      std::invalid_argument);
}

TEST(CheckpointTest, RestoredDeploymentServesRequestsViaQuickDrop) {
  // Train a tiny federation, checkpoint it, restore into a *fresh* QuickDrop
  // (as after a process restart) and serve an unlearning request.
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 30;
  spec.test_per_class = 10;
  spec.noise = 0.35f;
  spec.seed = 63;
  const auto tt = data::make_synthetic(spec);
  std::vector<data::Dataset> clients = {tt.train.subset([&] {
                                          std::vector<int> rows;
                                          for (int i = 0; i < tt.train.size(); i += 2) rows.push_back(i);
                                          return rows;
                                        }()),
                                        tt.train.subset([&] {
                                          std::vector<int> rows;
                                          for (int i = 1; i < tt.train.size(); i += 2) rows.push_back(i);
                                          return rows;
                                        }())};
  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 3;
  net.width = 12;
  net.depth = 1;
  auto shared = std::make_shared<Rng>(65);
  fl::ModelFactory factory = [shared, net] { return nn::make_convnet(net, *shared); };
  QuickDropConfig cfg;
  cfg.fl_rounds = 12;
  cfg.local_steps = 6;
  cfg.batch_size = 16;
  cfg.train_lr = 0.1f;
  cfg.scale = 10;
  cfg.unlearn_lr = 0.05f;
  cfg.recover_lr = 0.05f;

  QuickDrop original(factory, clients, cfg, 66);
  const auto trained = original.train();
  const auto cp = make_checkpoint(trained, original.stores());
  const auto bytes = serialize_checkpoint(cp);

  // "Restart": a fresh coordinator with restored stores — no training.
  QuickDrop restored(factory, clients, cfg, 67);
  const auto loaded = deserialize_checkpoint(bytes);
  restored.load_stores(restore_stores(loaded));
  const auto state = restored.unlearn(loaded.global, UnlearningRequest::for_class(1));

  auto model = factory();
  nn::load_state(*model, state);
  double class1_correct = 0, class1_total = 0;
  for (int i = 0; i < tt.test.size(); ++i) {
    if (tt.test.label(i) != 1) continue;
    ++class1_total;
  }
  ASSERT_GT(class1_total, 0);
  // Evaluate class-1 accuracy directly.
  const auto rows = tt.test.indices_of_class(1);
  auto [images, labels] = tt.test.batch(rows);
  const auto logits = model->forward_tensor(images).value();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    float best = logits.at(static_cast<std::int64_t>(i) * 3);
    int arg = 0;
    for (int c = 1; c < 3; ++c) {
      const float v = logits.at(static_cast<std::int64_t>(i) * 3 + c);
      if (v > best) {
        best = v;
        arg = c;
      }
    }
    class1_correct += arg == 1;
  }
  EXPECT_LT(class1_correct / class1_total, 0.3);
}

TEST(CheckpointTest, LoadStoresRejectsWrongClientCount) {
  Fixture f;
  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 3;
  net.width = 4;
  net.depth = 1;
  auto shared = std::make_shared<Rng>(68);
  fl::ModelFactory factory = [shared, net] { return nn::make_convnet(net, *shared); };
  QuickDropConfig cfg;
  QuickDrop qd(factory, {f.tt.train}, cfg, 69);
  EXPECT_THROW(qd.load_stores({}), std::invalid_argument);
}

TEST(CheckpointTest, ResumedTrainingMatchesUninterruptedRun) {
  // Acceptance: kill training after round k, checkpoint (global + stores +
  // RoundCursor), restore into a fresh coordinator and resume — the final
  // global state and synthetic stores match the uninterrupted run bitwise.
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 24;
  spec.test_per_class = 2;
  spec.noise = 0.3f;
  spec.seed = 71;
  const auto tt = data::make_synthetic(spec);
  Rng prng(72);
  std::vector<data::Dataset> clients;
  {
    std::vector<int> even, odd;
    for (int i = 0; i < tt.train.size(); ++i) (i % 2 == 0 ? even : odd).push_back(i);
    clients = {tt.train.subset(even), tt.train.subset(odd)};
  }
  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 3;
  net.width = 6;
  net.depth = 1;
  const auto make_factory = [net] {
    auto shared = std::make_shared<Rng>(73);
    return fl::ModelFactory([shared, net] { return nn::make_convnet(net, *shared); });
  };
  QuickDropConfig cfg;
  cfg.fl_rounds = 6;
  cfg.local_steps = 3;
  cfg.batch_size = 16;
  cfg.train_lr = 0.1f;
  cfg.scale = 12;
  {
    fl::FaultRates rates;
    rates.crash = 0.15f;
    cfg.faults = fl::FaultPlan(77, rates);
  }

  QuickDrop uninterrupted(make_factory(), clients, cfg, 74);
  const auto final_full = uninterrupted.train();

  // The "killed" run: checkpoint after round 2 (3 completed rounds).
  QuickDrop killed(make_factory(), clients, cfg, 74);
  std::vector<std::uint8_t> bytes;
  killed.train({}, {},
               [&](int round, const nn::ModelState& g, const Rng& rng) {
                 if (round != 2) return;
                 auto cp = make_checkpoint(g, killed.stores());
                 cp.cursor = RoundCursor{
                     .phase = "train", .rounds_done = round + 1, .rng_state = rng.serialize()};
                 bytes = serialize_checkpoint(cp);
               });
  ASSERT_FALSE(bytes.empty());

  // "Restart": fresh coordinator, restore stores + cursor, resume.
  QuickDrop resumed(make_factory(), clients, cfg, 74);
  const auto loaded = deserialize_checkpoint(bytes);
  ASSERT_TRUE(loaded.cursor.has_value());
  resumed.load_stores(restore_stores(loaded));
  TrainResume resume{.global = loaded.global,
                     .rounds_done = loaded.cursor->rounds_done,
                     .rng_state = loaded.cursor->rng_state};
  const auto final_resumed = resumed.train({}, {}, {}, &resume);

  ASSERT_EQ(final_resumed.size(), final_full.size());
  ASSERT_EQ(final_resumed.numel(), final_full.numel());
  for (std::int64_t j = 0; j < final_full.numel(); ++j) {
    ASSERT_EQ(final_resumed.at(j), final_full.at(j)) << "flat entry " << j;
  }
  // In-situ distillation state must line up too, or later unlearning
  // requests would diverge after a resume.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    expect_stores_equal(resumed.stores()[i], uninterrupted.stores()[i]);
  }
}

TEST(CheckpointTest, TrainRejectsOutOfRangeResumeCursor) {
  Fixture f;
  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 3;
  net.width = 4;
  net.depth = 1;
  auto shared = std::make_shared<Rng>(75);
  fl::ModelFactory factory = [shared, net] { return nn::make_convnet(net, *shared); };
  QuickDropConfig cfg;
  cfg.fl_rounds = 2;
  QuickDrop qd(factory, {f.tt.train}, cfg, 76);
  TrainResume resume{.global = qd.initial_state(),
                     .rounds_done = 3,  // > fl_rounds
                     .rng_state = Rng(1).serialize()};
  EXPECT_THROW(qd.train({}, {}, {}, &resume), std::invalid_argument);
}

TEST(CheckpointTest, RestoredStoreServesUnlearningData) {
  Fixture f;
  const auto stores = restore_stores(deserialize_checkpoint(
      serialize_checkpoint(make_checkpoint(f.global, f.stores))));
  const auto forget = stores[0].to_dataset({2});
  EXPECT_EQ(forget.size(), f.stores[0].class_count(2));
  const auto retain = stores[0].augmented_dataset({0, 1});
  EXPECT_EQ(retain.size(),
            2 * (f.stores[0].class_count(0) + f.stores[0].class_count(1)));
}

}  // namespace
}  // namespace quickdrop::core
