#include <gtest/gtest.h>

#include "core/distillation.h"
#include "core/finetune.h"
#include "data/synthetic.h"
#include "nn/convnet.h"

namespace quickdrop::core {
namespace {

nn::ConvNetConfig tiny_net() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 6;
  cfg.depth = 1;
  return cfg;
}

data::TrainTest tiny_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 4;
  spec.noise = 0.4f;
  spec.seed = 21;
  return data::make_synthetic(spec);
}

std::vector<Tensor> real_gradients(nn::Module& model, const data::Dataset& d, int label) {
  const auto rows = d.indices_of_class(label);
  auto [images, labels] = d.batch(rows);
  const auto params = model.parameters();
  const ag::Var loss = ag::cross_entropy(model.forward_tensor(images), labels);
  const auto grads = ag::grad(loss, std::span<const ag::Var>(params));
  std::vector<Tensor> out;
  for (const auto& g : grads) out.push_back(g.value());
  return out;
}

TEST(MatchingDistanceTest, ZeroForIdenticalGradients) {
  Rng rng(1);
  auto model = nn::make_convnet(tiny_net(), rng);
  const auto tt = tiny_data();
  const auto grads = real_gradients(*model, tt.train, 0);
  std::vector<ag::Var> as_vars;
  for (const auto& g : grads) as_vars.push_back(ag::Var::constant(g));
  const auto dist = matching_distance(as_vars, grads);
  EXPECT_NEAR(dist.value().item(), 0.0f, 1e-3f);
}

TEST(MatchingDistanceTest, PositiveForOpposedGradients) {
  Rng rng(1);
  auto model = nn::make_convnet(tiny_net(), rng);
  const auto tt = tiny_data();
  const auto grads = real_gradients(*model, tt.train, 0);
  std::vector<ag::Var> negated;
  for (const auto& g : grads) {
    Tensor n = g.clone();
    n.scale_(-1.0f);
    negated.push_back(ag::Var::constant(n));
  }
  // cos = -1 per group -> distance = 2 * total groups > 0.
  EXPECT_GT(matching_distance(negated, grads).value().item(), 1.0f);
}

TEST(MatchingDistanceTest, RejectsMismatchedLists) {
  EXPECT_THROW(matching_distance({}, {}), std::invalid_argument);
}

TEST(MatchSyntheticTest, ReducesDistance) {
  Rng rng(2);
  auto model = nn::make_convnet(tiny_net(), rng);
  const auto tt = tiny_data();
  const auto grads = real_gradients(*model, tt.train, 1);

  // Start from noise: matching should pull the synthetic gradient toward the
  // real one.
  Tensor synthetic = Tensor::randn({2, 1, 8, 8}, rng, 0.5f);
  DistillConfig cfg;
  cfg.opt_steps = 1;
  cfg.learning_rate = 0.05f;
  fl::CostMeter cost;
  const float first = match_synthetic_to_gradient(*model, synthetic, 1, grads, cfg, cost);
  float last = first;
  for (int i = 0; i < 30; ++i) {
    last = match_synthetic_to_gradient(*model, synthetic, 1, grads, cfg, cost);
  }
  EXPECT_LT(last, first);
  EXPECT_EQ(cost.distill_sample_grads, 31 * 2);
}

TEST(DistillingLocalUpdateTest, TrainsModelAndMovesSyntheticData) {
  Rng rng(3);
  auto model = nn::make_convnet(tiny_net(), rng);
  const auto tt = tiny_data();
  std::vector<SyntheticStore> stores;
  Rng srng(4);
  stores.emplace_back(tt.train, 10, srng);
  const Tensor before = stores[0].class_samples(0).clone();

  DistillConfig dcfg;
  DistillingLocalUpdate update(stores, /*local_steps=*/5, /*batch_size=*/16,
                               /*model_lr=*/0.1f, dcfg);
  fl::CostMeter cost;
  Rng urng(5);
  const double loss_before = [&] {
    const auto params = model->parameters();
    auto [images, labels] = tt.train.batch(tt.train.indices_of_class(0));
    return static_cast<double>(
        ag::cross_entropy(model->forward_tensor(images), labels).value().item());
  }();
  update.run(*model, tt.train, 0, 0, urng, cost);

  // Model learned something.
  const double loss_after = [&] {
    auto [images, labels] = tt.train.batch(tt.train.indices_of_class(0));
    return static_cast<double>(
        ag::cross_entropy(model->forward_tensor(images), labels).value().item());
  }();
  EXPECT_LT(loss_after, loss_before);

  // Synthetic pixels moved.
  const Tensor& after = stores[0].class_samples(0);
  double moved = 0;
  for (std::int64_t i = 0; i < after.numel(); ++i) moved += std::abs(after.at(i) - before.at(i));
  EXPECT_GT(moved, 0.0);

  // Both cost categories were charged.
  EXPECT_GT(cost.sample_grads, 0);
  EXPECT_GT(cost.distill_sample_grads, 0);
  EXPECT_GT(update.distill_seconds(), 0.0);
}

TEST(DistillingLocalUpdateTest, LargeSyntheticSetMatchesChunkwise) {
  // With scale=1 the synthetic set equals the full data; the matcher must
  // fall back to chunked matching and still make progress without touching
  // samples outside the chunk bounds.
  Rng rng(6);
  auto model = nn::make_convnet(tiny_net(), rng);
  const auto tt = tiny_data();
  std::vector<SyntheticStore> stores;
  Rng srng(7);
  stores.emplace_back(tt.train, 1, srng);  // 20 synthetic samples per class
  ASSERT_GT(stores[0].class_count(0), 16);

  const Tensor before = stores[0].class_samples(0).clone();
  DistillConfig dcfg;
  dcfg.max_synthetic_batch = 4;
  DistillingLocalUpdate update(stores, /*local_steps=*/6, /*batch_size=*/16, 0.1f, dcfg);
  fl::CostMeter cost;
  Rng urng(8);
  update.run(*model, tt.train, 0, 0, urng, cost);

  const Tensor& after = stores[0].class_samples(0);
  double moved = 0;
  for (std::int64_t i = 0; i < after.numel(); ++i) moved += std::abs(after.at(i) - before.at(i));
  EXPECT_GT(moved, 0.0);
  // Per matching call at most max_synthetic_batch samples are charged.
  EXPECT_LE(cost.distill_sample_grads, 6LL * 3 * dcfg.max_synthetic_batch);
}

TEST(DistillingLocalUpdateTest, Validation) {
  std::vector<SyntheticStore> stores;
  EXPECT_THROW(DistillingLocalUpdate(stores, 0, 16, 0.1f, {}), std::invalid_argument);
}

TEST(FinetuneTest, ZeroStepsIsNoOp) {
  const auto tt = tiny_data();
  Rng srng(4);
  SyntheticStore store(tt.train, 10, srng);
  const Tensor before = store.class_samples(0).clone();
  auto shared_rng = std::make_shared<Rng>(9);
  fl::ModelFactory factory = [shared_rng] { return nn::make_convnet(tiny_net(), *shared_rng); };
  FinetuneConfig cfg;  // outer_steps = 0
  fl::CostMeter cost;
  Rng rng(10);
  finetune_store(factory, store, tt.train, cfg, rng, cost);
  const Tensor& after = store.class_samples(0);
  for (std::int64_t i = 0; i < after.numel(); ++i) EXPECT_FLOAT_EQ(after.at(i), before.at(i));
  EXPECT_EQ(cost.total(), 0);
}

TEST(FinetuneTest, RunsAndChargesCost) {
  const auto tt = tiny_data();
  Rng srng(4);
  SyntheticStore store(tt.train, 10, srng);
  const Tensor before = store.class_samples(1).clone();
  auto shared_rng = std::make_shared<Rng>(9);
  fl::ModelFactory factory = [shared_rng] { return nn::make_convnet(tiny_net(), *shared_rng); };
  FinetuneConfig cfg;
  cfg.outer_steps = 2;
  cfg.inner_steps = 2;
  cfg.batch_size = 8;
  fl::CostMeter cost;
  Rng rng(10);
  finetune_store(factory, store, tt.train, cfg, rng, cost);
  EXPECT_GT(cost.sample_grads, 0);
  EXPECT_GT(cost.distill_sample_grads, 0);
  const Tensor& after = store.class_samples(1);
  double moved = 0;
  for (std::int64_t i = 0; i < after.numel(); ++i) moved += std::abs(after.at(i) - before.at(i));
  EXPECT_GT(moved, 0.0);
}

}  // namespace
}  // namespace quickdrop::core
