#include <gtest/gtest.h>

#include <set>

#include "core/sample_level.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::core {
namespace {

data::TrainTest make_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 40;
  spec.test_per_class = 10;
  spec.noise = 0.35f;
  spec.seed = 71;
  return data::make_synthetic(spec);
}

TEST(SubsetStoreTest, EveryRowAssignedToACellOfItsClass) {
  const auto tt = make_data();
  Rng rng(1);
  SubsetStore store(tt.train, 5, 3, rng);
  for (int row = 0; row < tt.train.size(); ++row) {
    const int cell = store.cell_of_row(row);
    EXPECT_EQ(store.cell_class(cell), tt.train.label(row));
    EXPECT_TRUE(store.has_cell(cell));
  }
}

TEST(SubsetStoreTest, CellsPartitionClasses) {
  const auto tt = make_data();
  Rng rng(1);
  SubsetStore store(tt.train, 5, 2, rng);
  // 4 classes x 2 subsets, every subset non-empty at 40 rows per class.
  EXPECT_EQ(store.all_cells().size(), 8u);
  // Rows of one class split roughly evenly between its two cells.
  std::map<int, int> counts;
  for (const int row : tt.train.indices_of_class(0)) ++counts[store.cell_of_row(row)];
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [_, n] : counts) EXPECT_EQ(n, 20);
}

TEST(SubsetStoreTest, CellsDatasetLabels) {
  const auto tt = make_data();
  Rng rng(1);
  SubsetStore store(tt.train, 5, 2, rng);
  const auto ds = store.cells_dataset({2 * 2, 2 * 2 + 1});  // both cells of class 2
  EXPECT_GT(ds.size(), 0);
  for (int i = 0; i < ds.size(); ++i) EXPECT_EQ(ds.label(i), 2);
}

TEST(SubsetStoreTest, CellsExcluding) {
  const auto tt = make_data();
  Rng rng(1);
  SubsetStore store(tt.train, 5, 2, rng);
  const auto rest = store.cells_excluding({0, 1});
  EXPECT_EQ(rest.size(), 6u);
  for (const int c : rest) EXPECT_GT(c, 1);
}

TEST(SubsetStoreTest, ScalingWithinCells) {
  const auto tt = make_data();
  Rng rng(1);
  SubsetStore store(tt.train, 5, 2, rng);
  // 20 rows per cell, scale 5 -> 4 synthetic samples per cell, 8 cells.
  EXPECT_EQ(store.total_samples(), 8 * 4);
}

TEST(SubsetStoreTest, Validation) {
  const auto tt = make_data();
  Rng rng(1);
  EXPECT_THROW(SubsetStore(tt.train, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(SubsetStore(tt.train, 5, 0, rng), std::invalid_argument);
}

struct SampleWorld {
  data::TrainTest tt = make_data();
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;
  std::unique_ptr<nn::Module> eval_model;

  SampleWorld() {
    Rng prng(5);
    clients = data::materialize(tt.train, data::iid_partition(tt.train, 3, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared = std::make_shared<Rng>(9);
    factory = [shared, net] { return nn::make_convnet(net, *shared); };
    eval_model = factory();
  }

  QuickDropConfig config() const {
    QuickDropConfig cfg;
    cfg.fl_rounds = 15;
    cfg.local_steps = 6;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 5;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.04f;
    cfg.recover_lr = 0.05f;
    return cfg;
  }
};

TEST(SampleLevelTest, AffectedCellsMapsRowsToOwningSubsets) {
  SampleWorld w;
  SampleLevelQuickDrop qd(w.factory, w.clients, w.config(), 2, 77);
  SampleRequest request;
  request.rows_per_client[1] = {0, 1, 2};
  const auto affected = qd.affected_cells(request);
  ASSERT_EQ(affected.size(), 1u);
  const auto& cells = affected.at(1);
  std::set<int> expected;
  for (const int row : request.rows_per_client[1]) {
    expected.insert(qd.stores()[1].cell_of_row(row));
  }
  EXPECT_EQ(std::set<int>(cells.begin(), cells.end()), expected);
}

TEST(SampleLevelTest, RejectsBadRequests) {
  SampleWorld w;
  SampleLevelQuickDrop qd(w.factory, w.clients, w.config(), 2, 77);
  SampleRequest empty;
  const auto state = qd.train();
  EXPECT_THROW(qd.unlearn(state, empty), std::invalid_argument);
  SampleRequest bad;
  bad.rows_per_client[99] = {0};
  EXPECT_THROW(qd.unlearn(state, bad), std::out_of_range);
}

TEST(SampleLevelTest, ForgetsSubsetKeepsClass) {
  SampleWorld w;
  SampleLevelQuickDrop qd(w.factory, w.clients, w.config(), 2, 77);
  const auto trained = qd.train();
  nn::load_state(*w.eval_model, trained);
  const double test_before = metrics::accuracy(*w.eval_model, w.tt.test);
  ASSERT_GT(test_before, 0.6);

  // Forget client 0's class-1 samples that live in subset cell (1,0).
  const int target_cell = 1 * 2 + 0;
  SampleRequest request;
  for (int row = 0; row < w.clients[0].size(); ++row) {
    if (w.clients[0].label(row) == 1 &&
        qd.stores()[0].cell_of_row(row) == target_cell) {
      request.rows_per_client[0].push_back(row);
    }
  }
  ASSERT_FALSE(request.rows_per_client[0].empty());

  PhaseStats us, rs;
  const auto state = qd.unlearn(trained, request, &us, &rs);
  nn::load_state(*w.eval_model, state);

  // Class 1 knowledge must survive: the same class's other subset (and other
  // clients) was in the recovery set.
  const double class1 = metrics::accuracy_on_classes(*w.eval_model, w.tt.test, {1});
  EXPECT_GT(class1, 0.3);
  // Overall model remains useful.
  EXPECT_GT(metrics::accuracy(*w.eval_model, w.tt.test), test_before - 0.3);
  // Forget set was tiny: far fewer samples than any class's full data.
  EXPECT_LT(us.data_size, 10);
  EXPECT_GT(rs.data_size, us.data_size);
}

TEST(SampleLevelTest, AccuracyOnForgottenSamplesDrops) {
  SampleWorld w;
  SampleLevelQuickDrop qd(w.factory, w.clients, w.config(), 2, 77);
  const auto trained = qd.train();

  // Forget all of class 3 on every client (both subsets) — then the subset
  // machinery must behave like class-level unlearning.
  SampleRequest request;
  for (int client = 0; client < 3; ++client) {
    for (int row = 0; row < w.clients[static_cast<std::size_t>(client)].size(); ++row) {
      if (w.clients[static_cast<std::size_t>(client)].label(row) == 3) {
        request.rows_per_client[client].push_back(row);
      }
    }
  }
  const auto state = qd.unlearn(trained, request);
  nn::load_state(*w.eval_model, state);
  EXPECT_LT(metrics::accuracy_on_classes(*w.eval_model, w.tt.test, {3}), 0.25);
  EXPECT_GT(metrics::accuracy_excluding_classes(*w.eval_model, w.tt.test, {3}), 0.5);
}

}  // namespace
}  // namespace quickdrop::core
