// Checkpoint compatibility gate: the committed pre-FlatState golden
// checkpoint (format v3, per-tensor global state) must keep loading through
// the v3 shim and evaluating bitwise-identically to the metrics recorded at
// generation time. QD_GOLDEN_CHECKPOINT is injected by CMake; the file is
// regenerated ONLY when intentionally re-baselining, via
// tools/golden_checkpoint_gen (whose deployment config this test mirrors —
// keep the two in sync).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "nn/state.h"
#include "util/rng.h"

namespace {

using namespace quickdrop;

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string metadata_at(const core::Checkpoint& cp, const std::string& key) {
  const auto it = cp.metadata.find(key);
  EXPECT_NE(it, cp.metadata.end()) << "golden checkpoint lacks metadata key " << key;
  return it == cp.metadata.end() ? std::string() : it->second;
}

TEST(GoldenCheckpoint, V3FileLoadsAndEvaluatesBitwiseIdentically) {
  const core::Checkpoint cp = core::load_checkpoint(QD_GOLDEN_CHECKPOINT);

  ASSERT_EQ(metadata_at(cp, "golden.format"), "v3");
  ASSERT_FALSE(cp.global.empty());
  ASSERT_TRUE(cp.global.layout() != nullptr);
  EXPECT_TRUE(nn::all_finite(cp.global));

  // Rebuild the generator's evaluation context (mirror of
  // tools/golden_checkpoint_gen.cpp — keep in sync).
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 30;
  spec.test_per_class = 10;
  spec.noise = 0.35f;
  spec.seed = 63;
  const auto tt = data::make_synthetic(spec);

  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 3;
  net.width = 12;
  net.depth = 1;
  Rng rng(65);
  auto model = nn::make_convnet(net, rng);

  // The repacked flat state must carry the layout the current model derives.
  EXPECT_EQ(cp.global.layout()->hash(), nn::StateLayout::of(*model)->hash());
  nn::load_state(*model, cp.global);

  // The recorded hexfloat strings pin the exact bits of every metric. The
  // eval kernels are thread-count invariant, so this holds at any --threads.
  EXPECT_EQ(hex_double(metrics::accuracy(*model, tt.test, 32)),
            metadata_at(cp, "eval.test_accuracy_hex"));
  EXPECT_EQ(hex_double(metrics::mean_loss(*model, tt.test, 32)),
            metadata_at(cp, "eval.test_loss_hex"));
  const auto per_class = metrics::per_class_accuracy(*model, tt.test, 32);
  ASSERT_EQ(per_class.size(), 3u);
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    EXPECT_EQ(hex_double(per_class[c]),
              metadata_at(cp, "eval.class" + std::to_string(c) + "_accuracy_hex"))
        << "class " << c;
  }

  // The synthetic stores must restore too: they are what serves unlearning
  // requests after a restart.
  const auto stores = core::restore_stores(cp);
  ASSERT_EQ(stores.size(), 2u);
  for (const auto& store : stores) EXPECT_GT(store.total_samples(), 0);
}

TEST(GoldenCheckpoint, RewritingTheGoldenProducesCurrentFormat) {
  // Round-tripping the loaded checkpoint through the current serializer
  // upgrades it to v4 (flat global) without changing any content.
  const core::Checkpoint cp = core::load_checkpoint(QD_GOLDEN_CHECKPOINT);
  const auto bytes = core::serialize_checkpoint(cp);
  const core::Checkpoint back = core::deserialize_checkpoint(bytes);
  ASSERT_EQ(back.global.numel(), cp.global.numel());
  for (std::int64_t i = 0; i < cp.global.numel(); ++i) {
    ASSERT_EQ(back.global.at(i), cp.global.at(i)) << "flat index " << i;
  }
  EXPECT_EQ(back.global.layout()->hash(), cp.global.layout()->hash());
  EXPECT_EQ(back.metadata, cp.metadata);
  ASSERT_EQ(back.clients.size(), cp.clients.size());
}

}  // namespace
