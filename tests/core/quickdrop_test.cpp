// Integration tests of the end-to-end QuickDrop pipeline on a miniature
// federation: unlearning erases the target, recovery restores the rest,
// relearning brings the knowledge back. Thresholds are intentionally loose —
// the benches measure the real numbers.
#include <gtest/gtest.h>

#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::core {
namespace {

data::TrainTest make_mini_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 40;
  spec.test_per_class = 10;
  spec.noise = 0.35f;
  spec.seed = 33;
  return data::make_synthetic(spec);
}

struct MiniFederation {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;
  std::unique_ptr<nn::Module> eval_model;

  explicit MiniFederation(int num_clients = 4, float alpha = 0.5f) : tt(make_mini_data()) {
    Rng prng(7);
    clients = data::materialize(tt.train, data::dirichlet_partition(tt.train, num_clients,
                                                                    alpha, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(19);
    factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };
    eval_model = factory();
  }

  QuickDropConfig config() const {
    QuickDropConfig cfg;
    cfg.fl_rounds = 20;
    cfg.local_steps = 6;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 10;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    return cfg;
  }

  double acc(const nn::ModelState& s, const std::vector<int>& classes) {
    nn::load_state(*eval_model, s);
    return metrics::accuracy_on_classes(*eval_model, tt.test, classes);
  }
  double acc_excluding(const nn::ModelState& s, const std::vector<int>& classes) {
    nn::load_state(*eval_model, s);
    return metrics::accuracy_excluding_classes(*eval_model, tt.test, classes);
  }
};

TEST(QuickDropTest, TrainReachesUsefulAccuracy) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  const auto state = qd.train();
  nn::load_state(*fed.eval_model, state);
  EXPECT_GT(metrics::accuracy(*fed.eval_model, fed.tt.test), 0.7);
  EXPECT_GT(qd.training_stats().cost.sample_grads, 0);
  EXPECT_GT(qd.training_stats().cost.distill_sample_grads, 0);
  EXPECT_GT(qd.distill_seconds(), 0.0);
}

TEST(QuickDropTest, ClassUnlearningErasesAndRecovers) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  const auto trained = qd.train();
  const double fset_before = fed.acc(trained, {2});
  const double rset_before = fed.acc_excluding(trained, {2});
  ASSERT_GT(fset_before, 0.5);

  PhaseStats us, rs;
  const auto unlearned = qd.unlearn(trained, UnlearningRequest::for_class(2), &us, &rs);
  EXPECT_LT(fed.acc(unlearned, {2}), 0.15);
  EXPECT_GT(fed.acc_excluding(unlearned, {2}), rset_before - 0.15);
  EXPECT_EQ(qd.forgotten_classes().count(2), 1u);
  EXPECT_GT(us.data_size, 0);
  EXPECT_GT(rs.data_size, us.data_size);  // retain >> forget
  EXPECT_EQ(us.rounds, fed.config().unlearn_rounds);
  EXPECT_EQ(rs.rounds, fed.config().recovery_rounds);
}

TEST(QuickDropTest, UnlearningUsesFarFewerSamplesThanOriginalData) {
  MiniFederation fed;
  auto cfg = fed.config();
  QuickDrop qd(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd.train();
  PhaseStats us, rs;
  qd.unlearn(trained, UnlearningRequest::for_class(1), &us, &rs);
  const auto original_total = fl::total_samples(fed.clients);
  EXPECT_LT(us.data_size * 2, original_total / 4);
  EXPECT_LT(rs.data_size, original_total);  // augmented synthetic ~ 2/scale
}

TEST(QuickDropTest, ClientUnlearning) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  const auto trained = qd.train();
  PhaseStats us, rs;
  const auto unlearned = qd.unlearn(trained, UnlearningRequest::for_client(0), &us, &rs);
  EXPECT_EQ(qd.forgotten_clients().count(0), 1u);
  // Forget data of the client = its synthetic store size.
  EXPECT_EQ(us.data_size, qd.stores()[0].total_samples());
  // Model remains usable on test data overall.
  nn::load_state(*fed.eval_model, unlearned);
  EXPECT_GT(metrics::accuracy(*fed.eval_model, fed.tt.test), 0.4);
}

TEST(QuickDropTest, RelearnRestoresKnowledge) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  const auto trained = qd.train();
  const double fset_before = fed.acc(trained, {2});
  const auto unlearned = qd.unlearn(trained, UnlearningRequest::for_class(2));
  ASSERT_LT(fed.acc(unlearned, {2}), 0.15);
  PhaseStats ls;
  const auto relearned = qd.relearn(unlearned, UnlearningRequest::for_class(2), &ls);
  EXPECT_GT(fed.acc(relearned, {2}), fset_before - 0.3);
  EXPECT_EQ(qd.forgotten_classes().count(2), 0u);
  EXPECT_GT(ls.data_size, 0);
}

TEST(QuickDropTest, SequentialRequestsExcludeForgottenFromRetain) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  auto state = qd.train();
  state = qd.unlearn(state, UnlearningRequest::for_class(0));
  // Retain sets for a second request must not contain class 0.
  const auto req = UnlearningRequest::for_class(1);
  const auto retain = qd.retain_datasets(&req);
  for (const auto& d : retain) {
    for (int i = 0; i < d.size(); ++i) {
      EXPECT_NE(d.label(i), 0);
      EXPECT_NE(d.label(i), 1);
    }
  }
  state = qd.unlearn(state, UnlearningRequest::for_class(1));
  EXPECT_LT(fed.acc(state, {0}), 0.25);
  EXPECT_LT(fed.acc(state, {1}), 0.25);
  EXPECT_GT(fed.acc_excluding(state, {0, 1}), 0.5);
}

TEST(QuickDropTest, ForgetDatasetsShapes) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  const auto by_class = qd.forget_datasets(UnlearningRequest::for_class(3));
  ASSERT_EQ(by_class.size(), fed.clients.size());
  for (std::size_t i = 0; i < by_class.size(); ++i) {
    EXPECT_EQ(by_class[i].size(), qd.stores()[i].class_count(3));
  }
  const auto by_client = qd.forget_datasets(UnlearningRequest::for_client(1));
  EXPECT_EQ(by_client[1].size(), qd.stores()[1].total_samples());
  EXPECT_EQ(by_client[0].size(), 0);
}

TEST(QuickDropTest, UnlearnUnknownTargetThrows) {
  MiniFederation fed;
  QuickDrop qd(fed.factory, fed.clients, fed.config(), 99);
  const auto trained = qd.train();
  // No client holds class 7 in a 4-class problem: class id out of range.
  EXPECT_THROW(qd.unlearn(trained, UnlearningRequest::for_class(7)), std::out_of_range);
}

TEST(QuickDropTest, AugmentationToggleChangesRetainSize) {
  MiniFederation fed;
  auto cfg = fed.config();
  cfg.augment_recovery = true;
  QuickDrop with(fed.factory, fed.clients, cfg, 99);
  cfg.augment_recovery = false;
  QuickDrop without(fed.factory, fed.clients, cfg, 99);
  const auto req = UnlearningRequest::for_class(0);
  EXPECT_EQ(fl::total_samples(with.retain_datasets(&req)),
            2 * fl::total_samples(without.retain_datasets(&req)));
}

TEST(QuickDropTest, PartialParticipationTrainsAndUnlearns) {
  MiniFederation fed;
  auto cfg = fed.config();
  cfg.participation = 0.5f;
  cfg.fl_rounds = 30;  // fewer client-updates per round -> more rounds
  QuickDrop qd(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd.train();
  nn::load_state(*fed.eval_model, trained);
  EXPECT_GT(metrics::accuracy(*fed.eval_model, fed.tt.test), 0.55);
  const auto unlearned = qd.unlearn(trained, UnlearningRequest::for_class(0));
  EXPECT_LT(fed.acc(unlearned, {0}), 0.25);
}

TEST(QuickDropTest, VerifiedUnlearningStopsEarlyWhenErased) {
  MiniFederation fed;
  auto cfg = fed.config();
  cfg.max_unlearn_rounds = 8;  // cap; should stop far earlier
  QuickDrop qd(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd.train();
  PhaseStats us;
  const auto unlearned = qd.unlearn(trained, UnlearningRequest::for_class(2), &us);
  EXPECT_GE(us.rounds, cfg.unlearn_rounds);
  EXPECT_LE(us.rounds, cfg.max_unlearn_rounds);
  EXPECT_LT(fed.acc(unlearned, {2}), 0.15);
}

TEST(QuickDropTest, VerifiedUnlearningRunsExtraRoundsWhenNeeded) {
  // With a near-zero learning rate one round cannot erase; the verified loop
  // must exhaust its cap.
  MiniFederation fed;
  auto cfg = fed.config();
  cfg.unlearn_lr = 1e-6f;
  cfg.max_unlearn_rounds = 3;
  QuickDrop qd(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd.train();
  PhaseStats us;
  qd.unlearn(trained, UnlearningRequest::for_class(2), &us);
  EXPECT_EQ(us.rounds, 3);
}

TEST(QuickDropTest, RejectsEmptyFederation) {
  MiniFederation fed;
  EXPECT_THROW(QuickDrop(fed.factory, {}, fed.config(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::core
