#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "core/distribution_matching.h"
#include "data/synthetic.h"
#include "nn/convnet.h"

namespace quickdrop::core {
namespace {

data::TrainTest tiny_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 4;
  spec.noise = 0.4f;
  spec.seed = 81;
  return data::make_synthetic(spec);
}

fl::ModelFactory tiny_factory() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 6;
  cfg.depth = 1;
  auto rng = std::make_shared<Rng>(83);
  return [rng, cfg] { return nn::make_convnet(cfg, *rng); };
}

TEST(FeatureMeanDistanceTest, ZeroForIdenticalSets) {
  Rng rng(1);
  const Tensor f = Tensor::randn({4, 6}, rng);
  const auto d = feature_mean_distance(ag::Var::constant(f), ag::Var::constant(f));
  EXPECT_NEAR(d.value().item(), 0.0f, 1e-6f);
}

TEST(FeatureMeanDistanceTest, MeasuresMeanGap) {
  // Means differ by exactly (1,1): distance = F * 1^2.
  const Tensor a = Tensor::zeros({2, 3});
  const Tensor b = Tensor::ones({5, 3});
  const auto d = feature_mean_distance(ag::Var::constant(a), ag::Var::constant(b));
  EXPECT_NEAR(d.value().item(), 3.0f, 1e-6f);
}

TEST(FeatureMeanDistanceTest, InvariantToPermutationWithinSet) {
  Rng rng(2);
  Tensor f({3, 4});
  for (std::int64_t i = 0; i < f.numel(); ++i) f.at(i) = rng.uniform(-1, 1);
  Tensor swapped = f.clone();
  for (int j = 0; j < 4; ++j) std::swap(swapped.at(j), swapped.at(4 + j));
  const Tensor other = Tensor::randn({2, 4}, rng);
  const auto d1 = feature_mean_distance(ag::Var::constant(f), ag::Var::constant(other));
  const auto d2 = feature_mean_distance(ag::Var::constant(swapped), ag::Var::constant(other));
  EXPECT_NEAR(d1.value().item(), d2.value().item(), 1e-6f);
}

TEST(FeatureMeanDistanceTest, RejectsIncompatibleShapes) {
  EXPECT_THROW(feature_mean_distance(ag::Var::constant(Tensor({2, 3})),
                                     ag::Var::constant(Tensor({2, 4}))),
               std::invalid_argument);
}

TEST(FeatureMeanDistanceTest, Gradchecks) {
  const auto f = [](const std::vector<ag::Var>& v) {
    return feature_mean_distance(v[0], v[1]);
  };
  Rng rng(3);
  EXPECT_LT(ag::max_gradient_error(f, {Tensor::randn({3, 4}, rng), Tensor::randn({2, 4}, rng)}),
            1e-2);
}

TEST(DistributionMatchingTest, ReducesFeatureGap) {
  const auto tt = tiny_data();
  Rng srng(5);
  // Noise-initialized synthetic set: DM must pull its features toward the
  // class means.
  SyntheticStore store(tt.train, 10, srng, SyntheticInit::kGaussianNoise);
  auto factory = tiny_factory();

  // Measure the DM objective under a fixed probe embedder before/after.
  auto probe = factory();
  auto* probe_net = dynamic_cast<nn::Sequential*>(probe.get());
  ASSERT_NE(probe_net, nullptr);
  auto gap = [&](int c) {
    ag::Var x = ag::Var::constant(store.class_samples(c));
    for (std::size_t i = 0; i + 1 < probe_net->size(); ++i) x = probe_net->layer(i).forward(x);
    auto [real, labels] = tt.train.batch(tt.train.indices_of_class(c));
    (void)labels;
    ag::Var y = ag::Var::constant(real);
    for (std::size_t i = 0; i + 1 < probe_net->size(); ++i) y = probe_net->layer(i).forward(y);
    return feature_mean_distance(x, y).value().item();
  };
  const float before = gap(0);

  DmConfig cfg;
  cfg.iterations = 30;
  cfg.learning_rate = 0.05f;
  fl::CostMeter cost;
  Rng rng(7);
  distill_distribution_matching(factory, store, tt.train, cfg, rng, cost);
  const float after = gap(0);
  EXPECT_LT(after, before);
  EXPECT_GT(cost.sample_grads, 0);
  EXPECT_GT(cost.distill_sample_grads, 0);
}

TEST(DistributionMatchingTest, ZeroIterationsIsNoOp) {
  const auto tt = tiny_data();
  Rng srng(5);
  SyntheticStore store(tt.train, 10, srng);
  const Tensor before = store.class_samples(0).clone();
  DmConfig cfg;
  cfg.iterations = 0;
  fl::CostMeter cost;
  Rng rng(7);
  distill_distribution_matching(tiny_factory(), store, tt.train, cfg, rng, cost);
  const Tensor& after = store.class_samples(0);
  for (std::int64_t i = 0; i < after.numel(); ++i) EXPECT_FLOAT_EQ(after.at(i), before.at(i));
  EXPECT_EQ(cost.total(), 0);
}

}  // namespace
}  // namespace quickdrop::core
