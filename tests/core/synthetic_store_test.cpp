#include <gtest/gtest.h>

#include "core/synthetic_store.h"
#include "data/synthetic.h"

namespace quickdrop::core {
namespace {

data::Dataset client_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 25;
  spec.test_per_class = 2;
  spec.seed = 5;
  auto tt = data::make_synthetic(spec);
  // Drop class 3 to simulate non-IID absence.
  std::vector<int> rows;
  for (int i = 0; i < tt.train.size(); ++i) {
    if (tt.train.label(i) != 3) rows.push_back(i);
  }
  return tt.train.subset(rows);
}

TEST(SyntheticStoreTest, CeilScaling) {
  const auto d = client_data();  // 25 samples in classes 0..2
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  // ceil(25/10) = 3 per present class.
  EXPECT_EQ(store.class_count(0), 3);
  EXPECT_EQ(store.class_count(1), 3);
  EXPECT_EQ(store.class_count(2), 3);
  EXPECT_EQ(store.class_count(3), 0);
  EXPECT_FALSE(store.has_class(3));
  EXPECT_EQ(store.total_samples(), 9);
}

TEST(SyntheticStoreTest, AtLeastOneSamplePerPresentClass) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 1000, rng);  // scale >> class size
  EXPECT_EQ(store.class_count(0), 1);
  EXPECT_EQ(store.total_samples(), 3);
}

TEST(SyntheticStoreTest, ScaleOneKeepsFullSize) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 1, rng);
  EXPECT_EQ(store.total_samples(), d.size());
}

TEST(SyntheticStoreTest, ToDatasetLabels) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  const auto ds = store.to_dataset({1, 2});
  EXPECT_EQ(ds.size(), 6);
  EXPECT_EQ(ds.class_counts(), (std::vector<int>{0, 3, 3, 0}));
  const auto all = store.to_dataset();
  EXPECT_EQ(all.size(), 9);
}

TEST(SyntheticStoreTest, AbsentClassYieldsEmptySelection) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  EXPECT_EQ(store.to_dataset({3}).size(), 0);
}

TEST(SyntheticStoreTest, AugmentedDatasetDoubles) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  const auto aug = store.augmented_dataset({0, 1, 2});
  EXPECT_EQ(aug.size(), 18);  // 9 synthetic + 9 real
}

TEST(SyntheticStoreTest, ByteSize) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  EXPECT_EQ(store.byte_size(), 9 * 8 * 8 * 4);
}

TEST(SyntheticStoreTest, PresentClasses) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  EXPECT_EQ(store.present_classes(), (std::vector<int>{0, 1, 2}));
}

TEST(SyntheticStoreTest, MutatingSamplesVisibleInDataset) {
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  store.class_samples(0).fill(42.0f);
  const auto ds = store.to_dataset({0});
  EXPECT_FLOAT_EQ(ds.image(0).at(0), 42.0f);
}

TEST(SyntheticStoreTest, InitializedFromRealSamples) {
  // Every initial synthetic sample must be an exact copy of some real sample
  // of the same class (paper §4.1: init from random real samples).
  const auto d = client_data();
  Rng rng(1);
  SyntheticStore store(d, 10, rng);
  for (const int c : store.present_classes()) {
    const auto rows = d.indices_of_class(c);
    const Tensor& synth = store.class_samples(c);
    const std::int64_t stride = synth.numel() / synth.dim(0);
    for (std::int64_t i = 0; i < synth.dim(0); ++i) {
      bool matched = false;
      for (const int r : rows) {
        const auto img = d.image(r);
        bool equal = true;
        for (std::int64_t j = 0; j < stride && equal; ++j) {
          equal = synth.at(i * stride + j) == img.at(j);
        }
        matched = matched || equal;
      }
      EXPECT_TRUE(matched) << "class " << c << " sample " << i;
    }
  }
}

TEST(SyntheticStoreTest, RejectsBadScale) {
  const auto d = client_data();
  Rng rng(1);
  EXPECT_THROW(SyntheticStore(d, 0, rng), std::invalid_argument);
}

class ScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweep, SizesFollowCeilFormula) {
  const auto d = client_data();
  Rng rng(2);
  SyntheticStore store(d, GetParam(), rng);
  for (const int c : store.present_classes()) {
    const int expected = static_cast<int>(
        (d.indices_of_class(c).size() + static_cast<std::size_t>(GetParam()) - 1) /
        static_cast<std::size_t>(GetParam()));
    EXPECT_EQ(store.class_count(c), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleSweep, ::testing::Values(1, 2, 5, 10, 25, 100, 1000));

}  // namespace
}  // namespace quickdrop::core
