// Scheduler policy contracts: FIFO order, priority selection, coalescing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/scheduler.h"

namespace quickdrop::serve {
namespace {

ServiceRequest make_request(std::int64_t id, RequestKind kind, int target, int priority = 0) {
  ServiceRequest request;
  request.id = id;
  request.kind = kind;
  request.target = target;
  request.priority = priority;
  return request;
}

TEST(SchedulerTest, PolicyNamesRoundTrip) {
  for (const auto policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kPriority, SchedulerPolicy::kCoalesce}) {
    EXPECT_EQ(policy_from_name(policy_name(policy)), policy);
  }
  EXPECT_THROW(policy_from_name("lifo"), std::invalid_argument);
}

TEST(SchedulerTest, FifoPicksTheFrontRequestOnly) {
  const Scheduler scheduler(SchedulerPolicy::kFifo);
  EXPECT_TRUE(scheduler.next_batch({}).empty());
  const std::vector<ServiceRequest> pending = {
      make_request(3, RequestKind::kClass, 1, 0),
      make_request(4, RequestKind::kClass, 2, 9),  // higher priority is ignored
  };
  const auto ids = scheduler.next_batch(pending);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 3);
}

TEST(SchedulerTest, PriorityPicksHighestThenEarliestAdmitted) {
  const Scheduler scheduler(SchedulerPolicy::kPriority);
  const std::vector<ServiceRequest> pending = {
      make_request(0, RequestKind::kClass, 1, 1),
      make_request(1, RequestKind::kClient, 2, 5),
      make_request(2, RequestKind::kClass, 3, 5),  // ties with #1; #1 admitted first
      make_request(3, RequestKind::kClass, 4, 0),
  };
  const auto ids = scheduler.next_batch(pending);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 1);
}

TEST(SchedulerTest, CoalesceMergesAllClassAndClientRequests) {
  const Scheduler scheduler(SchedulerPolicy::kCoalesce);
  const std::vector<ServiceRequest> pending = {
      make_request(0, RequestKind::kClass, 1),
      make_request(1, RequestKind::kClient, 0),
      make_request(2, RequestKind::kClass, 4),
  };
  EXPECT_EQ(scheduler.next_batch(pending), (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(SchedulerTest, CoalesceHonorsMaxBatch) {
  const Scheduler scheduler(SchedulerPolicy::kCoalesce, 2);
  const std::vector<ServiceRequest> pending = {
      make_request(0, RequestKind::kClass, 1),
      make_request(1, RequestKind::kClass, 2),
      make_request(2, RequestKind::kClass, 3),
  };
  EXPECT_EQ(scheduler.next_batch(pending), (std::vector<std::int64_t>{0, 1}));
  EXPECT_THROW(Scheduler(SchedulerPolicy::kCoalesce, -1), std::invalid_argument);
}

TEST(SchedulerTest, CoalesceRunsSampleRequestsAlone) {
  const Scheduler scheduler(SchedulerPolicy::kCoalesce);
  auto sample = make_request(0, RequestKind::kSample, 1);
  sample.rows = {3};
  // Sample at the front: singleton batch.
  EXPECT_EQ(scheduler.next_batch({sample, make_request(1, RequestKind::kClass, 2)}),
            (std::vector<std::int64_t>{0}));
  // Sample behind class requests: skipped, classes merge.
  auto mid_sample = make_request(1, RequestKind::kSample, 0);
  mid_sample.rows = {7};
  EXPECT_EQ(scheduler.next_batch({make_request(0, RequestKind::kClass, 2), mid_sample,
                                  make_request(2, RequestKind::kClass, 3)}),
            (std::vector<std::int64_t>{0, 2}));
}

}  // namespace
}  // namespace quickdrop::serve
