// Trace generation determinism and text round-trips.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>

#include "serve/trace.h"

namespace quickdrop::serve {
namespace {

TEST(TraceTest, GenerationIsDeterministicInSeed) {
  ArrivalConfig config;
  config.num_requests = 12;
  config.num_classes = 6;
  config.num_clients = 8;
  config.priority_levels = 3;
  Rng a(1234);
  Rng b(1234);
  const auto ta = generate_trace(config, a);
  const auto tb = generate_trace(config, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].kind, tb[i].kind) << i;
    EXPECT_EQ(ta[i].target, tb[i].target) << i;
    EXPECT_EQ(ta[i].arrival_seconds, tb[i].arrival_seconds) << i;  // NOLINT bitwise contract
    EXPECT_EQ(ta[i].priority, tb[i].priority) << i;
  }
  Rng c(99);
  const auto tc = generate_trace(config, c);
  bool any_diff = ta.size() != tc.size();
  for (std::size_t i = 0; !any_diff && i < ta.size(); ++i) {
    any_diff = ta[i].target != tc[i].target ||
               ta[i].arrival_seconds != tc[i].arrival_seconds;  // NOLINT bitwise contract
  }
  EXPECT_TRUE(any_diff) << "different seeds should differ somewhere";
}

TEST(TraceTest, ArrivalsAreSortedAndTargetsUniquePerKind) {
  ArrivalConfig config;
  config.num_requests = 10;
  config.num_classes = 10;
  config.num_clients = 4;
  Rng rng(7);
  const auto trace = generate_trace(config, rng);
  ASSERT_FALSE(trace.empty());
  std::set<std::pair<int, int>> seen;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) EXPECT_GE(trace[i].arrival_seconds, trace[i - 1].arrival_seconds);
    EXPECT_TRUE(seen.insert({static_cast<int>(trace[i].kind), trace[i].target}).second)
        << "duplicate target without allow_duplicates";
    if (trace[i].kind == RequestKind::kClass) {
      EXPECT_GE(trace[i].target, 0);
      EXPECT_LT(trace[i].target, config.num_classes);
    } else {
      EXPECT_GE(trace[i].target, 0);
      EXPECT_LT(trace[i].target, config.num_clients);
    }
  }
}

TEST(TraceTest, TextRoundTripIsExact) {
  ArrivalConfig config;
  config.num_requests = 9;
  config.priority_levels = 4;
  config.client_fraction = 0.5;
  Rng rng(42);
  auto trace = generate_trace(config, rng);
  // A hand-written sample request exercises the rows field.
  ServiceRequest sample;
  sample.kind = RequestKind::kSample;
  sample.target = 2;
  sample.rows = {5, 9, 11};
  sample.arrival_seconds = trace.back().arrival_seconds + 1.25;
  trace.push_back(sample);

  const auto parsed = parse_trace(format_trace(trace));
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, trace[i].kind) << i;
    EXPECT_EQ(parsed[i].target, trace[i].target) << i;
    EXPECT_EQ(parsed[i].rows, trace[i].rows) << i;
    EXPECT_EQ(parsed[i].arrival_seconds, trace[i].arrival_seconds)  // NOLINT bitwise contract
        << i << ": arrival must round-trip bit-exactly";
    EXPECT_EQ(parsed[i].priority, trace[i].priority) << i;
  }
}

TEST(TraceTest, ParseSkipsCommentsAndSortsByArrival) {
  const auto trace = parse_trace(
      "# a hand-edited trace, deliberately out of order\n"
      "\n"
      "120.5 class 3\n"
      "10 client 1 prio=2\n");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, RequestKind::kClient);
  EXPECT_EQ(trace[0].target, 1);
  EXPECT_EQ(trace[0].priority, 2);
  EXPECT_EQ(trace[1].kind, RequestKind::kClass);
  EXPECT_EQ(trace[1].target, 3);
}

TEST(TraceTest, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_request("12.0 shard 3"), std::invalid_argument);      // unknown kind
  EXPECT_THROW(parse_request("abc class 3"), std::invalid_argument);       // bad arrival
  EXPECT_THROW(parse_request("1.0 class"), std::invalid_argument);         // missing target
  EXPECT_THROW(parse_request("1.0 sample 2"), std::invalid_argument);      // rows required
  EXPECT_THROW(parse_request("1.0 class 3 what=1"), std::invalid_argument);  // unknown field
}

TEST(TraceTest, ParseReportsLineNumbersInTypedErrors) {
  // Errors surface as TraceError carrying the 1-based line of the offender,
  // comments and blanks included in the count.
  try {
    parse_trace("# header\n1.0 class 3\n\n2.0 shard 9\n");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line_number, 4);
    EXPECT_NE(std::string(e.what()).find("trace line 4"), std::string::npos);
  }
  // TraceError IS-A invalid_argument, so pre-existing catch sites still work.
  EXPECT_THROW(parse_trace("1.0 class notanint\n"), std::invalid_argument);
}

TEST(TraceTest, ParseRejectsMidLineTruncation) {
  // A crash mid-write leaves the final line without its newline; the parser
  // must refuse the file rather than silently accept a possibly-torn record.
  try {
    parse_trace("1.0 class 3\n2.0 client 1");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line_number, 2);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  // Same text with its newline restored parses fine.
  EXPECT_EQ(parse_trace("1.0 class 3\n2.0 client 1\n").size(), 2u);
}

TEST(TraceTest, ParseRejectsOverlongLines) {
  // Binary garbage fed as a trace tends to decode as one enormous "line";
  // cap at 4096 bytes with a typed error instead of attempting to tokenize.
  std::string text = "1.0 class 3\n2.0 client 1 ";
  text.append(5000, 'x');
  text += "\n";
  try {
    parse_trace(text);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line_number, 2);
    EXPECT_NE(std::string(e.what()).find("4096"), std::string::npos);
  }
}

TEST(TraceTest, ParseWrapsOutOfRangeNumbersWithLineNumbers) {
  // std::stoi/stod throw out_of_range, not invalid_argument; the parser must
  // translate those into line-numbered TraceErrors too.
  try {
    parse_trace("1.0 class 99999999999999999999\n");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line_number, 1);
  }
}

TEST(TraceTest, GenerateRejectsNonsense) {
  Rng rng(1);
  ArrivalConfig bad;
  bad.num_requests = -1;
  EXPECT_THROW(generate_trace(bad, rng), std::invalid_argument);
  bad = ArrivalConfig{};
  bad.mean_interarrival_seconds = -1.0;
  EXPECT_THROW(generate_trace(bad, rng), std::invalid_argument);
  bad = ArrivalConfig{};
  bad.client_fraction = 1.5;
  EXPECT_THROW(generate_trace(bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::serve
