// Serve-path replay with quantized client-update transport: the full service
// run must stay bitwise deterministic across thread counts when every client
// update crosses the wire as an int8/bf16 frame — with and without an active
// fault plan — and mid-request checkpoint resume must land on identical bits.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/quantize.h"
#include "nn/convnet.h"
#include "serve/service.h"
#include "util/thread_pool.h"

namespace quickdrop::serve {
namespace {

struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

data::TrainTest make_mini_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 32;
  spec.test_per_class = 8;
  spec.noise = 0.35f;
  spec.seed = 33;
  return data::make_synthetic(spec);
}

struct MiniFederation {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;

  MiniFederation() : tt(make_mini_data()) {
    Rng prng(7);
    clients = data::materialize(tt.train, data::dirichlet_partition(tt.train, 4, 0.5f, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(19);
    factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };
  }

  static core::QuickDropConfig config(fl::Codec codec) {
    core::QuickDropConfig cfg;
    cfg.fl_rounds = 4;
    cfg.local_steps = 3;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 10;
    cfg.unlearn_rounds = 2;
    cfg.recovery_rounds = 2;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    cfg.transport.codec = codec;
    return cfg;
  }
};

void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b,
                                 const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << what << ": flat entry " << j;
  }
}

ServiceRequest class_request(int target, double arrival) {
  ServiceRequest request;
  request.kind = RequestKind::kClass;
  request.target = target;
  request.arrival_seconds = arrival;
  return request;
}

struct ServiceRun {
  nn::ModelState final_state;
  std::string json;
};

ServiceRun run_service(int threads, core::QuickDropConfig cfg) {
  set_num_threads(threads);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd->train();
  ServiceConfig config;
  config.policy = SchedulerPolicy::kFifo;
  UnlearningService service(qd, trained, config);
  const auto report = service.run({class_request(1, 0.0), class_request(3, 5.0)});
  return {service.state(), report.to_json()};
}

TEST(QuantizedServe, RunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  for (const fl::Codec codec : {fl::Codec::kInt8, fl::Codec::kBf16}) {
    SCOPED_TRACE(fl::codec_name(codec));
    const auto cfg = MiniFederation::config(codec);
    const auto serial = run_service(1, cfg);
    const auto parallel = run_service(4, cfg);
    expect_states_bitwise_equal(serial.final_state, parallel.final_state,
                                "quantized service state");
    EXPECT_EQ(serial.json, parallel.json);
  }
}

TEST(QuantizedServe, RunBitIdenticalAcrossThreadCountsUnderFaultPlan) {
  ThreadGuard guard;
  auto cfg = MiniFederation::config(fl::Codec::kInt8);
  fl::FaultRates rates;
  rates.crash = 0.15f;
  rates.corrupt_nan = 0.1f;
  rates.straggler = 0.1f;
  cfg.faults = fl::FaultPlan(77, rates);
  cfg.defense.min_quorum = 0.25f;
  cfg.defense.max_round_attempts = 2;
  const auto serial = run_service(1, cfg);
  const auto parallel = run_service(4, cfg);
  expect_states_bitwise_equal(serial.final_state, parallel.final_state,
                              "faulted quantized service state");
  EXPECT_EQ(serial.json, parallel.json);
}

TEST(QuantizedServe, ExecutorResumesMidRequestViaCheckpoint) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config(fl::Codec::kInt8);

  // Uninterrupted cycle at 1 thread, capturing a mid-recovery checkpoint.
  set_num_threads(1);
  ServiceRequest request = class_request(1, 0.0);
  std::vector<std::uint8_t> checkpoint_bytes;
  ExecutionResult full;
  {
    MiniFederation fed;
    auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
    const auto trained = qd->train();
    Executor executor(qd, CostModel{});
    full = executor.execute(trained, {request},
                            [&](const core::UnlearnCursor& cursor, const nn::ModelState& state) {
                              if (cursor.phase != core::UnlearnCursor::kPhaseRecover ||
                                  cursor.rounds_done != 1) {
                                return;
                              }
                              auto cp = core::make_checkpoint(state, qd->stores());
                              cp.cursor = core::RoundCursor{.phase = "recover",
                                                            .rounds_done = cursor.rounds_done,
                                                            .rng_state = cursor.rng_state};
                              checkpoint_bytes = core::serialize_checkpoint(cp);
                            });
  }
  ASSERT_FALSE(checkpoint_bytes.empty());

  // Fresh coordinator, same quantized transport, resumed at 4 threads: the
  // remaining quantized rounds must replay onto identical bits.
  set_num_threads(4);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto cp = core::deserialize_checkpoint(checkpoint_bytes);
  ASSERT_TRUE(cp.cursor.has_value());
  qd->load_stores(core::restore_stores(cp));
  Executor executor(qd, CostModel{});
  core::UnlearnCursor resume;
  resume.phase = core::UnlearnCursor::kPhaseRecover;
  resume.rounds_done = cp.cursor->rounds_done;
  resume.rng_state = cp.cursor->rng_state;
  const auto resumed = executor.execute(cp.global, {request}, {}, &resume);

  expect_states_bitwise_equal(full.state, resumed.state, "resumed quantized recovery");
  EXPECT_EQ(resumed.recovery_stats.rounds, full.recovery_stats.rounds - cp.cursor->rounds_done);
}

}  // namespace
}  // namespace quickdrop::serve
