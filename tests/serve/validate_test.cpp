// Admission validation: every reject reason has a unit test, plus the
// queue's determinism and bookkeeping contracts.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "serve/queue.h"

namespace quickdrop::serve {
namespace {

ServiceRequest make_request(RequestKind kind, int target) {
  ServiceRequest request;
  request.kind = kind;
  request.target = target;
  return request;
}

ValidationContext make_context() {
  ValidationContext ctx;
  ctx.num_classes = 10;
  ctx.num_clients = 4;
  ctx.supports_sample_level = false;
  return ctx;
}

TEST(ValidateTest, AcceptsInRangeRequests) {
  const auto ctx = make_context();
  EXPECT_TRUE(validate_request(make_request(RequestKind::kClass, 0), ctx).accepted);
  EXPECT_TRUE(validate_request(make_request(RequestKind::kClass, 9), ctx).accepted);
  EXPECT_TRUE(validate_request(make_request(RequestKind::kClient, 3), ctx).accepted);
}

TEST(ValidateTest, RejectsTargetOutOfRange) {
  const auto ctx = make_context();
  for (const int target : {-1, 10, 42}) {
    const auto decision = validate_request(make_request(RequestKind::kClass, target), ctx);
    ASSERT_FALSE(decision.accepted) << target;
    EXPECT_EQ(decision.reason, RejectReason::kTargetOutOfRange) << decision.message;
  }
  const auto decision = validate_request(make_request(RequestKind::kClient, 4), ctx);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, RejectReason::kTargetOutOfRange);
}

TEST(ValidateTest, RejectsAlreadyForgotten) {
  auto ctx = make_context();
  const std::set<int> classes = {2};
  const std::set<int> clients = {1};
  ctx.forgotten_classes = &classes;
  ctx.forgotten_clients = &clients;
  const auto d1 = validate_request(make_request(RequestKind::kClass, 2), ctx);
  ASSERT_FALSE(d1.accepted);
  EXPECT_EQ(d1.reason, RejectReason::kAlreadyForgotten);
  const auto d2 = validate_request(make_request(RequestKind::kClient, 1), ctx);
  ASSERT_FALSE(d2.accepted);
  EXPECT_EQ(d2.reason, RejectReason::kAlreadyForgotten);
  // The *other* kind with the same numeric target is unrelated.
  EXPECT_TRUE(validate_request(make_request(RequestKind::kClass, 1), ctx).accepted);
}

TEST(ValidateTest, RejectsDuplicatePending) {
  auto ctx = make_context();
  std::vector<ServiceRequest> pending = {make_request(RequestKind::kClass, 5)};
  pending[0].id = 17;
  ctx.pending = &pending;
  const auto decision = validate_request(make_request(RequestKind::kClass, 5), ctx);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, RejectReason::kDuplicatePending);
  EXPECT_NE(decision.message.find("#17"), std::string::npos) << decision.message;
  // Same target, different kind: not a duplicate.
  EXPECT_TRUE(validate_request(make_request(RequestKind::kClient, 3), ctx).accepted);
}

TEST(ValidateTest, RejectsEmptyForgetSet) {
  auto ctx = make_context();
  ctx.has_forget_data = [](const ServiceRequest& request) { return request.target != 7; };
  const auto decision = validate_request(make_request(RequestKind::kClass, 7), ctx);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, RejectReason::kEmptyForgetSet);
  EXPECT_TRUE(validate_request(make_request(RequestKind::kClass, 6), ctx).accepted);
}

TEST(ValidateTest, RejectsUnsupportedSampleKind) {
  const auto ctx = make_context();
  auto request = make_request(RequestKind::kSample, 2);
  request.rows = {1, 2};
  const auto decision = validate_request(request, ctx);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, RejectReason::kUnsupportedKind);
}

TEST(ValidateTest, RejectsSampleWithEmptyRows) {
  auto ctx = make_context();
  ctx.supports_sample_level = true;
  const auto decision = validate_request(make_request(RequestKind::kSample, 2), ctx);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, RejectReason::kEmptyRows);
}

TEST(QueueTest, AssignsMonotoneIdsInAdmissionOrder) {
  AdmissionQueue queue;
  const auto ctx = make_context();
  for (const int target : {4, 1, 8}) {
    ASSERT_TRUE(queue.admit(make_request(RequestKind::kClass, target), ctx).accepted);
  }
  ASSERT_EQ(queue.pending().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(queue.pending()[i].id, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(queue.pending()[0].target, 4);
  EXPECT_EQ(queue.pending()[2].target, 8);
  EXPECT_EQ(queue.admitted_count(), 3);
}

TEST(QueueTest, RecordsRejectionsAndKeepsThemOutOfPending) {
  AdmissionQueue queue;
  const auto ctx = make_context();
  ASSERT_TRUE(queue.admit(make_request(RequestKind::kClass, 5), ctx).accepted);
  // Duplicate of the now-pending request: the queue wires its own pending
  // list into the context.
  ASSERT_FALSE(queue.admit(make_request(RequestKind::kClass, 5), ctx).accepted);
  ASSERT_FALSE(queue.admit(make_request(RequestKind::kClass, 77), ctx).accepted);
  EXPECT_EQ(queue.pending().size(), 1u);
  ASSERT_EQ(queue.rejected().size(), 2u);
  EXPECT_EQ(queue.rejected()[0].reason, RejectReason::kDuplicatePending);
  EXPECT_EQ(queue.rejected()[1].reason, RejectReason::kTargetOutOfRange);
  EXPECT_EQ(queue.admitted_count(), 1);
}

TEST(QueueTest, TakeRemovesByIdAndPreservesOrder) {
  AdmissionQueue queue;
  const auto ctx = make_context();
  for (const int target : {0, 1, 2, 3}) {
    ASSERT_TRUE(queue.admit(make_request(RequestKind::kClass, target), ctx).accepted);
  }
  const auto taken = queue.take({2, 0});
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 0);  // sorted back into admission order
  EXPECT_EQ(taken[1].id, 2);
  ASSERT_EQ(queue.pending().size(), 2u);
  EXPECT_EQ(queue.pending()[0].id, 1);
  EXPECT_EQ(queue.pending()[1].id, 3);
  EXPECT_THROW(queue.take({2}), std::invalid_argument);  // already taken
}

}  // namespace
}  // namespace quickdrop::serve
