// End-to-end service contracts: coalescing correctness versus sequential
// unlearning, thread-count invariance of the full service run (with and
// without an active fault plan), and mid-request resume through
// core/checkpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "serve/service.h"
#include "util/thread_pool.h"

namespace quickdrop::serve {
namespace {

struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

data::TrainTest make_mini_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 32;
  spec.test_per_class = 8;
  spec.noise = 0.35f;
  spec.seed = 33;
  return data::make_synthetic(spec);
}

// A fresh federation per run: the factory's shared RNG must start at the same
// point for every run under comparison.
struct MiniFederation {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;

  MiniFederation() : tt(make_mini_data()) {
    Rng prng(7);
    clients = data::materialize(tt.train, data::dirichlet_partition(tt.train, 4, 0.5f, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(19);
    factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };
  }

  static core::QuickDropConfig config() {
    core::QuickDropConfig cfg;
    cfg.fl_rounds = 5;
    cfg.local_steps = 3;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 10;
    cfg.unlearn_rounds = 2;
    cfg.recovery_rounds = 2;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    return cfg;
  }
};

void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b,
                                 const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << what << ": flat entry " << j;
  }
}

ServiceRequest class_request(int target, double arrival) {
  ServiceRequest request;
  request.kind = RequestKind::kClass;
  request.target = target;
  request.arrival_seconds = arrival;
  return request;
}

/// Arrivals clustered tightly against a slow cost model, so under coalescing
/// the later requests pile up behind the first cycle and merge.
std::vector<ServiceRequest> clustered_trace() {
  return {class_request(1, 0.0), class_request(2, 5.0), class_request(3, 9.0)};
}

CostModel slow_rounds() {
  CostModel cost;
  cost.seconds_per_round = 50.0;
  cost.seconds_per_sample_grad = 0.0;
  return cost;
}

struct ServiceRun {
  nn::ModelState final_state;
  ServiceReport report;
  std::string json;
  data::Dataset test;
  fl::ModelFactory factory;
};

ServiceRun run_service(SchedulerPolicy policy, int threads, core::QuickDropConfig cfg) {
  set_num_threads(threads);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd->train();
  ServiceConfig config;
  config.policy = policy;
  config.cost_model = slow_rounds();
  UnlearningService service(qd, trained, config);
  ServiceRun out{.final_state = {},
                 .report = service.run(clustered_trace()),
                 .json = {},
                 .test = fed.tt.test,
                 .factory = fed.factory};
  out.final_state = service.state();
  out.json = out.report.to_json();
  return out;
}

TEST(ServiceTest, CoalescingMatchesSequentialOnRetainedClassesWithFewerRounds) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();
  const auto fifo = run_service(SchedulerPolicy::kFifo, 1, cfg);
  const auto coalesce = run_service(SchedulerPolicy::kCoalesce, 1, cfg);

  ASSERT_EQ(fifo.report.completed.size(), 3u);
  ASSERT_EQ(coalesce.report.completed.size(), 3u);
  // With 50s rounds and arrivals 5s apart, requests 2 and 3 arrive during
  // cycle 0 and must merge: strictly fewer cycles and FL rounds than FIFO.
  EXPECT_LT(coalesce.report.cycles, fifo.report.cycles);
  EXPECT_LT(coalesce.report.total_fl_rounds, fifo.report.total_fl_rounds);
  EXPECT_EQ(fifo.report.cycles, 3);
  EXPECT_EQ(coalesce.report.cycles, 2);

  // Both histories forget classes {1,2,3}; the retained class 0 must end up
  // comparably accurate, and every forgotten class near zero, either way.
  auto model = fifo.factory();
  nn::load_state(*model, fifo.final_state);
  const auto pc_fifo = metrics::per_class_accuracy(*model, fifo.test);
  nn::load_state(*model, coalesce.final_state);
  const auto pc_coalesce = metrics::per_class_accuracy(*model, coalesce.test);
  for (const int forgotten : {1, 2, 3}) {
    EXPECT_LT(pc_fifo[static_cast<std::size_t>(forgotten)], 0.25) << forgotten;
    EXPECT_LT(pc_coalesce[static_cast<std::size_t>(forgotten)], 0.25) << forgotten;
  }
  EXPECT_NEAR(pc_fifo[0], pc_coalesce[0], 0.25);
  EXPECT_GT(pc_coalesce[0], 0.5);
}

TEST(ServiceTest, RunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();
  const auto serial = run_service(SchedulerPolicy::kCoalesce, 1, cfg);
  const auto parallel = run_service(SchedulerPolicy::kCoalesce, 4, cfg);
  expect_states_bitwise_equal(serial.final_state, parallel.final_state, "service state");
  // The whole report — latencies, rounds, bytes — is simulated, so the JSON
  // must match byte for byte.
  EXPECT_EQ(serial.json, parallel.json);
}

TEST(ServiceTest, RunBitIdenticalAcrossThreadCountsUnderFaultPlan) {
  ThreadGuard guard;
  auto cfg = MiniFederation::config();
  fl::FaultRates rates;
  rates.crash = 0.15f;
  rates.corrupt_nan = 0.1f;
  rates.straggler = 0.1f;
  cfg.faults = fl::FaultPlan(77, rates);
  cfg.defense.min_quorum = 0.25f;
  cfg.defense.max_round_attempts = 2;
  const auto serial = run_service(SchedulerPolicy::kFifo, 1, cfg);
  const auto parallel = run_service(SchedulerPolicy::kFifo, 4, cfg);
  expect_states_bitwise_equal(serial.final_state, parallel.final_state, "faulted service state");
  EXPECT_EQ(serial.json, parallel.json);
}

TEST(ServiceTest, RejectsLayoutMismatchedInitialState) {
  // The layout-hash gate: a state restored from the wrong checkpoint
  // (different net architecture) must fail at construction, not as a shape
  // error mid-request.
  ThreadGuard guard;
  set_num_threads(1);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients,
                                              MiniFederation::config(), 5);
  ServiceConfig config;
  EXPECT_NO_THROW(UnlearningService(qd, qd->initial_state(), config));
  EXPECT_THROW(UnlearningService(qd, nn::ModelState{}, config), std::invalid_argument);
  nn::ModelState wrong_architecture{nn::StateLayout::of_shapes({{3, 3}, {3}})};
  EXPECT_THROW(UnlearningService(qd, wrong_architecture, config), std::invalid_argument);
}

TEST(ServiceTest, RejectsInvalidTraceRequestsWithReasons) {
  ThreadGuard guard;
  set_num_threads(1);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients,
                                              MiniFederation::config(), 99);
  const auto trained = qd->train();
  auto trace = clustered_trace();
  trace.push_back(class_request(2, 10.0));   // duplicate of a pending request
  trace.push_back(class_request(99, 11.0));  // out of range
  ServiceRequest sample;
  sample.kind = RequestKind::kSample;
  sample.target = 0;
  sample.rows = {1};
  sample.arrival_seconds = 12.0;
  trace.push_back(sample);  // executor serves class/client only

  ServiceConfig config;
  config.policy = SchedulerPolicy::kCoalesce;
  config.cost_model = slow_rounds();
  UnlearningService service(qd, trained, config);
  const auto report = service.run(trace);
  EXPECT_EQ(report.completed.size(), 3u);
  ASSERT_EQ(report.rejected.size(), 3u);
  EXPECT_EQ(report.rejected[0].reason, RejectReason::kDuplicatePending);
  EXPECT_EQ(report.rejected[1].reason, RejectReason::kTargetOutOfRange);
  EXPECT_EQ(report.rejected[2].reason, RejectReason::kUnsupportedKind);
}

TEST(ServiceTest, ExecutorResumesMidRequestViaCheckpoint) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();

  // Uninterrupted cycle at 1 thread, capturing a mid-recovery checkpoint.
  set_num_threads(1);
  ServiceRequest request = class_request(1, 0.0);
  std::vector<std::uint8_t> checkpoint_bytes;
  ExecutionResult full;
  {
    MiniFederation fed;
    auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
    const auto trained = qd->train();
    Executor executor(qd, CostModel{});
    full = executor.execute(trained, {request},
                            [&](const core::UnlearnCursor& cursor, const nn::ModelState& state) {
                              if (cursor.phase != core::UnlearnCursor::kPhaseRecover ||
                                  cursor.rounds_done != 1) {
                                return;
                              }
                              auto cp = core::make_checkpoint(state, qd->stores());
                              cp.cursor = core::RoundCursor{.phase = "recover",
                                                            .rounds_done = cursor.rounds_done,
                                                            .rng_state = cursor.rng_state};
                              checkpoint_bytes = core::serialize_checkpoint(cp);
                            });
  }
  ASSERT_FALSE(checkpoint_bytes.empty());

  // A fresh coordinator (same seed, no training) restores the checkpoint and
  // resumes the in-flight recovery at 4 threads: bitwise-identical landing.
  set_num_threads(4);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto cp = core::deserialize_checkpoint(checkpoint_bytes);
  ASSERT_TRUE(cp.cursor.has_value());
  qd->load_stores(core::restore_stores(cp));
  Executor executor(qd, CostModel{});
  core::UnlearnCursor resume;
  resume.phase = core::UnlearnCursor::kPhaseRecover;
  resume.rounds_done = cp.cursor->rounds_done;
  resume.rng_state = cp.cursor->rng_state;
  const auto resumed = executor.execute(cp.global, {request}, {}, &resume);

  expect_states_bitwise_equal(full.state, resumed.state, "resumed mid-recovery");
  // The resumed cycle accounts only the remaining rounds.
  EXPECT_EQ(resumed.recovery_stats.rounds,
            full.recovery_stats.rounds - cp.cursor->rounds_done);
  EXPECT_EQ(resumed.unlearn_stats.rounds, 0);
  EXPECT_TRUE(qd->forgotten_classes().count(1));
}

TEST(ServiceTest, ExecutorResumesMidSgaViaCheckpoint) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();

  set_num_threads(1);
  ServiceRequest request = class_request(2, 0.0);
  std::vector<std::uint8_t> checkpoint_bytes;
  ExecutionResult full;
  {
    MiniFederation fed;
    auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
    const auto trained = qd->train();
    Executor executor(qd, CostModel{});
    full = executor.execute(trained, {request},
                            [&](const core::UnlearnCursor& cursor, const nn::ModelState& state) {
                              if (cursor.phase != core::UnlearnCursor::kPhaseUnlearn ||
                                  cursor.rounds_done != 1) {
                                return;
                              }
                              auto cp = core::make_checkpoint(state, qd->stores());
                              cp.cursor = core::RoundCursor{.phase = "unlearn",
                                                            .rounds_done = cursor.rounds_done,
                                                            .rng_state = cursor.rng_state};
                              checkpoint_bytes = core::serialize_checkpoint(cp);
                            });
  }
  ASSERT_FALSE(checkpoint_bytes.empty());

  set_num_threads(4);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto cp = core::deserialize_checkpoint(checkpoint_bytes);
  ASSERT_TRUE(cp.cursor.has_value());
  qd->load_stores(core::restore_stores(cp));
  Executor executor(qd, CostModel{});
  core::UnlearnCursor resume;
  resume.phase = core::UnlearnCursor::kPhaseUnlearn;
  resume.rounds_done = cp.cursor->rounds_done;
  resume.rng_state = cp.cursor->rng_state;
  const auto resumed = executor.execute(cp.global, {request}, {}, &resume);

  expect_states_bitwise_equal(full.state, resumed.state, "resumed mid-SGA");
  EXPECT_EQ(resumed.unlearn_stats.rounds, full.unlearn_stats.rounds - cp.cursor->rounds_done);
  EXPECT_EQ(resumed.recovery_stats.rounds, full.recovery_stats.rounds);
}

}  // namespace
}  // namespace quickdrop::serve
