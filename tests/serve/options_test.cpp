// Typed CLI validation for `serve` and `replay`: every OptionsError path —
// bad values, cross-flag conflicts, the --resume policy gate, and
// HOST:PORT parsing — exercised without invoking the binary.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "serve/options.h"

namespace quickdrop::serve {
namespace {

std::vector<char*> make_argv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

ServeOptions parse_serve(std::vector<std::string> args) {
  args.insert(args.begin(), "prog");
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  return parse_serve_options(flags);
}

ReplayOptions parse_replay(std::vector<std::string> args) {
  args.insert(args.begin(), "prog");
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  return parse_replay_options(flags);
}

/// Asserts the parse fails and names `flag` as the offender.
void expect_serve_error(std::vector<std::string> args, const std::string& flag) {
  try {
    parse_serve(std::move(args));
    ADD_FAILURE() << "expected OptionsError on --" << flag;
  } catch (const OptionsError& e) {
    EXPECT_EQ(e.flag, flag);
    EXPECT_NE(std::string(e.what()).find("--" + flag), std::string::npos);
  }
}

TEST(ServeOptions, DefaultsParseClean) {
  const auto o = parse_serve({});
  EXPECT_EQ(o.checkpoint, "model.qdcp");
  EXPECT_EQ(o.requests, 6);
  EXPECT_EQ(o.policy, "fifo");
  EXPECT_EQ(o.transport, "inproc");
  EXPECT_EQ(o.listen_port, -1);
  EXPECT_FALSE(o.trace_seed_set);
}

TEST(ServeOptions, AcceptsFullLoopbackConfiguration) {
  const auto o = parse_serve({"--transport=loopback", "--wire-bandwidth=125000",
                              "--policy=coalesce", "--max-batch=4", "--requests=10",
                              "--trace-seed=5"});
  EXPECT_EQ(o.transport, "loopback");
  EXPECT_DOUBLE_EQ(o.wire_bandwidth, 125000.0);
  EXPECT_EQ(o.max_batch, 4);
  EXPECT_TRUE(o.trace_seed_set);
  EXPECT_EQ(o.trace_seed, 5u);
}

TEST(ServeOptions, RejectsOutOfRangeValues) {
  expect_serve_error({"--requests=0"}, "requests");
  expect_serve_error({"--requests=-3"}, "requests");
  expect_serve_error({"--arrival-rate=0"}, "arrival-rate");
  expect_serve_error({"--arrival-rate=-1"}, "arrival-rate");
  expect_serve_error({"--client-fraction=-0.1"}, "client-fraction");
  expect_serve_error({"--client-fraction=1.5"}, "client-fraction");
  expect_serve_error({"--max-batch=-1"}, "max-batch");
  expect_serve_error({"--sec-per-round=-2"}, "sec-per-round");
  expect_serve_error({"--sec-per-grad=-1e-4"}, "sec-per-grad");
  expect_serve_error({"--wire-bandwidth=-5"}, "wire-bandwidth");
  expect_serve_error({"--policy=bogus"}, "policy");
  expect_serve_error({"--transport=tcp"}, "transport");
}

TEST(ServeOptions, ShardTopologyOverrideValidated) {
  // Unset flags inherit the checkpoint's recorded topology (sentinel 0).
  const auto inherit = parse_serve({});
  EXPECT_EQ(inherit.shards, 0);
  EXPECT_EQ(inherit.shard_fanout, 0);

  const auto o = parse_serve({"--shards=16", "--shard-fanout=4"});
  EXPECT_EQ(o.shards, 16);
  EXPECT_EQ(o.shard_fanout, 4);

  expect_serve_error({"--shards=3"}, "shards");    // not a power of two
  expect_serve_error({"--shards=0"}, "shards");
  expect_serve_error({"--shards=128"}, "shards");  // above the 64-lane canon
  expect_serve_error({"--shards=-4"}, "shards");
  expect_serve_error({"--shard-fanout=1"}, "shard-fanout");
  expect_serve_error({"--shard-fanout=65"}, "shard-fanout");
}

TEST(ServeOptions, MaxBatchRequiresCoalescePolicy) {
  expect_serve_error({"--max-batch=4"}, "max-batch");
  expect_serve_error({"--policy=priority", "--max-batch=4"}, "max-batch");
  EXPECT_EQ(parse_serve({"--policy=coalesce", "--max-batch=4"}).max_batch, 4);
}

TEST(ServeOptions, TraceFileConflictsWithGenerationFlags) {
  EXPECT_EQ(parse_serve({"--trace=t.trace"}).trace_path, "t.trace");
  expect_serve_error({"--trace=t.trace", "--requests=3"}, "requests");
  expect_serve_error({"--trace=t.trace", "--arrival-rate=5"}, "arrival-rate");
  expect_serve_error({"--trace=t.trace", "--client-fraction=0.5"}, "client-fraction");
  expect_serve_error({"--trace=t.trace", "--trace-seed=1"}, "trace-seed");
}

TEST(ServeOptions, ListenModeValidatesPortAndConflicts) {
  EXPECT_EQ(parse_serve({"--listen=8080"}).listen_port, 8080);
  expect_serve_error({"--listen=0"}, "listen");
  expect_serve_error({"--listen=-1"}, "listen");
  expect_serve_error({"--listen=70000"}, "listen");
  expect_serve_error({"--listen=8080", "--transport=loopback"}, "listen");
  expect_serve_error({"--listen=8080", "--trace=t.trace"}, "listen");
  expect_serve_error({"--listen=8080", "--requests=3"}, "requests");
  expect_serve_error({"--listen=8080", "--trace-seed=1"}, "trace-seed");
  expect_serve_error({"--listen=8080", "--dump-trace=d.trace"}, "dump-trace");
}

TEST(ServeOptions, TenantsRequireListenMode) {
  expect_serve_error({"--tenants=a=1"}, "tenants");
  EXPECT_EQ(parse_serve({"--listen=8080", "--tenants=a=1"}).tenants_spec, "a=1");
}

TEST(ServeOptions, WireListenValidatesPortAndConflicts) {
  EXPECT_EQ(parse_serve({"--wire-listen=9000"}).wire_listen_port, 9000);
  expect_serve_error({"--wire-listen=0"}, "wire-listen");
  expect_serve_error({"--wire-listen=70000"}, "wire-listen");
  expect_serve_error({"--wire-listen=9000", "--listen=8080"}, "wire-listen");
  expect_serve_error({"--wire-listen=9000", "--transport=loopback"}, "wire-listen");
  expect_serve_error({"--wire-listen=9000", "--trace=t.trace"}, "wire-listen");
  expect_serve_error({"--wire-listen=9000", "--requests=3"}, "requests");
  expect_serve_error({"--wire-listen=9000", "--dump-trace=d.trace"}, "dump-trace");
}

TEST(ServeOptions, ResumePolicyGate) {
  ServeOptions o;
  o.policy = "coalesce";

  // Not resuming: any metadata passes.
  o.resume = false;
  EXPECT_NO_THROW(validate_resume_policy(o, {}));

  o.resume = true;
  // Checkpoint predates policy recording.
  EXPECT_THROW(validate_resume_policy(o, {}), OptionsError);
  // Policy mismatch names the recorded policy in the message.
  try {
    validate_resume_policy(o, {{kServePolicyKey, "fifo"}});
    ADD_FAILURE() << "expected policy-mismatch OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_EQ(e.flag, "resume");
    EXPECT_NE(std::string(e.what()).find("'fifo'"), std::string::npos);
  }
  // Matching policy resumes.
  EXPECT_NO_THROW(validate_resume_policy(o, {{kServePolicyKey, "coalesce"}}));
}

TEST(ReplayOptions, RequiresConnectAndTrace) {
  const auto o = parse_replay({"--connect=10.0.0.2:9000", "--trace=t.trace",
                               "--checkpoint=m.qdcp", "--tenant=acme"});
  EXPECT_EQ(o.host, "10.0.0.2");
  EXPECT_EQ(o.port, 9000);
  EXPECT_EQ(o.trace_path, "t.trace");
  EXPECT_EQ(o.checkpoint, "m.qdcp");
  EXPECT_EQ(o.tenant, "acme");

  EXPECT_THROW(parse_replay({"--trace=t.trace"}), OptionsError);
  EXPECT_THROW(parse_replay({"--connect=host:80"}), OptionsError);  // no trace
  EXPECT_THROW(parse_replay({"--connect=host:80", "--trace=t.trace", "--tenant="}),
               OptionsError);
}

TEST(ReplayOptions, ParseHostPort) {
  const auto [host, port] = parse_host_port("localhost:8080");
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 8080);

  for (const std::string bad :
       {"nohost", ":8080", "host:", "host:abc", "host:0", "host:65536", "host:123456"}) {
    try {
      parse_host_port(bad);
      ADD_FAILURE() << "accepted '" << bad << "'";
    } catch (const OptionsError& e) {
      EXPECT_EQ(e.flag, "connect") << bad;
    }
  }
}

}  // namespace
}  // namespace quickdrop::serve
