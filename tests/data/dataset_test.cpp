#include <gtest/gtest.h>

#include "data/dataset.h"

namespace quickdrop::data {
namespace {

Dataset tiny_dataset() {
  // 4 samples of 1x2x2 images, labels 0,1,0,2.
  Tensor images({4, 1, 2, 2});
  for (std::int64_t i = 0; i < images.numel(); ++i) images.at(i) = static_cast<float>(i);
  return Dataset(std::move(images), {0, 1, 0, 2}, 3);
}

TEST(DatasetTest, BasicAccessors) {
  const auto d = tiny_dataset();
  EXPECT_EQ(d.size(), 4);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.image_shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.class_counts(), (std::vector<int>{2, 1, 1}));
}

TEST(DatasetTest, ImageExtraction) {
  const auto d = tiny_dataset();
  const auto img = d.image(1);
  EXPECT_EQ(img.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(img.at(0), 4.0f);
}

TEST(DatasetTest, BatchStacksRows) {
  const auto d = tiny_dataset();
  auto [images, labels] = d.batch({2, 0});
  EXPECT_EQ(images.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_EQ(labels, (std::vector<int>{0, 0}));
  EXPECT_FLOAT_EQ(images.at(0), 8.0f);  // row 2 starts at flat index 8
  EXPECT_FLOAT_EQ(images.at(4), 0.0f);  // row 0
}

TEST(DatasetTest, BatchRejectsOutOfRange) {
  const auto d = tiny_dataset();
  EXPECT_THROW(d.batch({4}), std::out_of_range);
}

TEST(DatasetTest, IndicesOfClass) {
  const auto d = tiny_dataset();
  EXPECT_EQ(d.indices_of_class(0), (std::vector<int>{0, 2}));
  EXPECT_TRUE(d.indices_of_class(1) == std::vector<int>{1});
  EXPECT_TRUE(d.indices_of_class(2) == std::vector<int>{3});
}

TEST(DatasetTest, SubsetDeepCopies) {
  const auto d = tiny_dataset();
  auto s = d.subset({1, 3});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.label(0), 1);
  EXPECT_EQ(s.label(1), 2);
}

TEST(DatasetTest, Concat) {
  const auto d = tiny_dataset();
  const auto c = Dataset::concat(d, d.subset({0}));
  EXPECT_EQ(c.size(), 5);
  EXPECT_EQ(c.label(4), 0);
  EXPECT_FLOAT_EQ(c.image(4).at(0), 0.0f);
}

TEST(DatasetTest, ConcatRejectsMismatch) {
  const auto d = tiny_dataset();
  const Dataset other(Shape{3, 2, 2}, 3);
  EXPECT_THROW(Dataset::concat(d, other), std::invalid_argument);
}

TEST(DatasetTest, LabelsValidated) {
  Tensor images({1, 1, 2, 2});
  EXPECT_THROW(Dataset(images.clone(), {5}, 3), std::invalid_argument);
  EXPECT_THROW(Dataset(images.clone(), {0, 0}, 3), std::invalid_argument);
}

TEST(DatasetTest, EmptyDataset) {
  const Dataset d(Shape{1, 2, 2}, 3);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0);
}

TEST(DatasetTest, SampleBatchIndices) {
  Rng rng(1);
  const std::vector<int> pool = {10, 20, 30};
  const auto small = Dataset::sample_batch_indices(pool, 2, rng);
  EXPECT_EQ(small.size(), 2u);
  for (const int v : small) EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  const auto all = Dataset::sample_batch_indices(pool, 10, rng);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_THROW(Dataset::sample_batch_indices({}, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::data
