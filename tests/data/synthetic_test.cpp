#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace quickdrop::data {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 10;
  spec.test_per_class = 5;
  spec.seed = 77;
  return spec;
}

TEST(SyntheticTest, ShapesAndCounts) {
  const auto tt = make_synthetic(tiny_spec());
  EXPECT_EQ(tt.train.size(), 40);
  EXPECT_EQ(tt.test.size(), 20);
  EXPECT_EQ(tt.train.image_shape(), (Shape{1, 8, 8}));
  EXPECT_EQ(tt.train.class_counts(), (std::vector<int>{10, 10, 10, 10}));
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const auto a = make_synthetic(tiny_spec());
  const auto b = make_synthetic(tiny_spec());
  const auto ia = a.train.image(3);
  const auto ib = b.train.image(3);
  for (std::int64_t i = 0; i < ia.numel(); ++i) EXPECT_FLOAT_EQ(ia.at(i), ib.at(i));
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto spec2 = tiny_spec();
  spec2.seed = 78;
  const auto a = make_synthetic(tiny_spec());
  const auto b = make_synthetic(spec2);
  bool any_diff = false;
  const auto ia = a.train.image(0);
  const auto ib = b.train.image(0);
  for (std::int64_t i = 0; i < ia.numel(); ++i) any_diff = any_diff || ia.at(i) != ib.at(i);
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, ClassesAreSeparated) {
  // Mean within-class distance should be clearly below mean between-class
  // distance for a low-noise spec.
  auto spec = tiny_spec();
  spec.noise = 0.1f;
  spec.max_shift = 0;
  const auto tt = make_synthetic(spec);
  auto dist = [&](int i, int j) {
    const auto a = tt.train.image(i);
    const auto b = tt.train.image(j);
    double acc = 0;
    for (std::int64_t k = 0; k < a.numel(); ++k) {
      acc += (a.at(k) - b.at(k)) * (a.at(k) - b.at(k));
    }
    return std::sqrt(acc);
  };
  // Class c occupies rows [10c, 10c+10).
  double within = 0, between = 0;
  int wn = 0, bn = 0;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 5; ++i) {
      within += dist(10 * c + i, 10 * c + i + 5);
      ++wn;
      between += dist(10 * c + i, 10 * ((c + 1) % 4) + i);
      ++bn;
    }
  }
  EXPECT_LT(within / wn, 0.5 * between / bn);
}

TEST(SyntheticTest, NoiseIncreasesVariance) {
  auto low = tiny_spec();
  low.noise = 0.0f;
  low.max_shift = 0;
  auto high = tiny_spec();
  high.noise = 2.0f;
  high.max_shift = 0;
  const auto a = make_synthetic(low);
  const auto b = make_synthetic(high);
  // Same class, two samples: with zero noise they are identical.
  const auto a0 = a.train.image(0), a1 = a.train.image(1);
  for (std::int64_t i = 0; i < a0.numel(); ++i) EXPECT_FLOAT_EQ(a0.at(i), a1.at(i));
  const auto b0 = b.train.image(0), b1 = b.train.image(1);
  double diff = 0;
  for (std::int64_t i = 0; i < b0.numel(); ++i) diff += std::fabs(b0.at(i) - b1.at(i));
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticTest, SpecValidation) {
  auto spec = tiny_spec();
  spec.num_classes = 1;
  EXPECT_THROW(make_synthetic(spec), std::invalid_argument);
  spec = tiny_spec();
  spec.noise = -1.0f;
  EXPECT_THROW(make_synthetic(spec), std::invalid_argument);
}

TEST(SyntheticTest, NamedSpecs) {
  EXPECT_EQ(mnist_like_spec().channels, 1);
  EXPECT_EQ(cifar10_like_spec().channels, 3);
  EXPECT_GT(svhn_like_spec().train_per_class, cifar10_like_spec().train_per_class);
  EXPECT_EQ(spec_by_name("mnist").channels, 1);
  EXPECT_EQ(spec_by_name("cifar10").seed, cifar10_like_spec().seed);
  EXPECT_THROW(spec_by_name("imagenet"), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::data
