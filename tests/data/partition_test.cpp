#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/partition.h"
#include "data/synthetic.h"

namespace quickdrop::data {
namespace {

Dataset labeled_dataset(int per_class, int num_classes) {
  const int m = per_class * num_classes;
  Tensor images({m, 1, 2, 2});
  std::vector<int> labels(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) labels[static_cast<std::size_t>(i)] = i % num_classes;
  return Dataset(std::move(images), std::move(labels), num_classes);
}

void expect_exact_cover(const Dataset& d, const Partition& p) {
  std::vector<int> seen;
  for (const auto& client : p) seen.insert(seen.end(), client.begin(), client.end());
  std::sort(seen.begin(), seen.end());
  std::vector<int> expected(static_cast<std::size_t>(d.size()));
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
}

TEST(PartitionTest, DirichletCoversAllRowsOnce) {
  const auto d = labeled_dataset(30, 5);
  Rng rng(1);
  const auto p = dirichlet_partition(d, 6, 0.1f, rng);
  EXPECT_EQ(p.size(), 6u);
  expect_exact_cover(d, p);
}

TEST(PartitionTest, DirichletNoEmptyClients) {
  const auto d = labeled_dataset(10, 3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto p = dirichlet_partition(d, 8, 0.05f, rng);
    for (const auto& client : p) EXPECT_FALSE(client.empty());
  }
}

TEST(PartitionTest, LowerAlphaMoreSkewed) {
  const auto tt = make_synthetic([] {
    SyntheticSpec s;
    s.num_classes = 10;
    s.channels = 1;
    s.image_size = 8;
    s.train_per_class = 40;
    s.test_per_class = 2;
    return s;
  }());
  Rng rng1(3), rng2(3);
  const auto skewed = dirichlet_partition(tt.train, 10, 0.1f, rng1);
  const auto uniform = dirichlet_partition(tt.train, 10, 100.0f, rng2);
  EXPECT_GT(label_skew(tt.train, skewed), label_skew(tt.train, uniform) + 0.2);
}

TEST(PartitionTest, IidCoversAndBalances) {
  const auto d = labeled_dataset(20, 4);
  Rng rng(2);
  const auto p = iid_partition(d, 5, rng);
  expect_exact_cover(d, p);
  for (const auto& client : p) EXPECT_EQ(client.size(), 16u);
}

TEST(PartitionTest, IidSkewNearUniform) {
  const auto tt = make_synthetic([] {
    SyntheticSpec s;
    s.num_classes = 10;
    s.channels = 1;
    s.image_size = 8;
    s.train_per_class = 40;
    s.test_per_class = 2;
    return s;
  }());
  Rng rng(4);
  const auto p = iid_partition(tt.train, 4, rng);
  EXPECT_LT(label_skew(tt.train, p), 0.2);
}

TEST(PartitionTest, MaterializePreservesLabels) {
  const auto d = labeled_dataset(6, 3);
  Rng rng(1);
  const auto p = iid_partition(d, 3, rng);
  const auto clients = materialize(d, p);
  ASSERT_EQ(clients.size(), 3u);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ASSERT_EQ(clients[i].size(), static_cast<int>(p[i].size()));
    for (int r = 0; r < clients[i].size(); ++r) {
      EXPECT_EQ(clients[i].label(r), d.label(p[i][static_cast<std::size_t>(r)]));
    }
  }
}

TEST(PartitionTest, Validation) {
  const auto d = labeled_dataset(2, 2);
  Rng rng(1);
  EXPECT_THROW(dirichlet_partition(d, 0, 0.1f, rng), std::invalid_argument);
  EXPECT_THROW(dirichlet_partition(d, 100, 0.1f, rng), std::invalid_argument);
  EXPECT_THROW(iid_partition(d, 0, rng), std::invalid_argument);
}

class DirichletAlphaSweep : public ::testing::TestWithParam<float> {};

TEST_P(DirichletAlphaSweep, AlwaysExactCoverAndNonEmpty) {
  const auto d = labeled_dataset(25, 4);
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  const auto p = dirichlet_partition(d, 7, GetParam(), rng);
  expect_exact_cover(d, p);
  for (const auto& client : p) EXPECT_FALSE(client.empty());
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletAlphaSweep,
                         ::testing::Values(0.05f, 0.1f, 0.5f, 1.0f, 10.0f, 100.0f));

}  // namespace
}  // namespace quickdrop::data
