#include "util/cli.h"

#include <gtest/gtest.h>

namespace quickdrop {
namespace {

std::vector<char*> make_argv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(CliTest, ParsesEqualsForm) {
  std::vector<std::string> args = {"prog", "--clients=10", "--alpha=0.1", "--name=hello"};
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.get_int("clients", 0), 10);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 0.1);
  EXPECT_EQ(flags.get_string("name", ""), "hello");
}

TEST(CliTest, ParsesSpaceForm) {
  std::vector<std::string> args = {"prog", "--clients", "20"};
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.get_int("clients", 0), 20);
}

TEST(CliTest, BareFlagIsTrue) {
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(CliTest, DefaultsWhenAbsent) {
  std::vector<std::string> args = {"prog"};
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_FALSE(flags.get_bool("missing2", false));
}

TEST(CliTest, RejectsPositionalArgs) {
  std::vector<std::string> args = {"prog", "oops"};
  auto argv = make_argv(args);
  EXPECT_THROW(CliFlags(static_cast<int>(argv.size()), argv.data()), std::invalid_argument);
}

TEST(CliTest, DetectsUnusedFlags) {
  std::vector<std::string> args = {"prog", "--used=1", "--typo=2"};
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  flags.get_int("used", 0);
  EXPECT_EQ(flags.unused(), std::vector<std::string>{"typo"});
  EXPECT_THROW(flags.check_unused(), std::invalid_argument);
}

TEST(CliTest, CheckUnusedPassesWhenAllConsumed) {
  std::vector<std::string> args = {"prog", "--a=1"};
  auto argv = make_argv(args);
  CliFlags flags(static_cast<int>(argv.size()), argv.data());
  flags.get_int("a", 0);
  EXPECT_NO_THROW(flags.check_unused());
}

}  // namespace
}  // namespace quickdrop
