// ThreadPool unit tests: full range coverage, serial fallback, nested-call
// inlining, exception propagation, and the global pool's sizing knobs.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace quickdrop {
namespace {

TEST(ThreadPoolTest, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(-3), std::invalid_argument);
}

TEST(ThreadPoolTest, RunChunksInvokesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(17);
  pool.run_chunks(17, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Odd range and grain so chunk boundaries don't line up with anything.
  constexpr std::int64_t kBegin = 3, kEnd = 1003, kGrain = 37;
  std::vector<std::atomic<int>> hits(kEnd);
  std::atomic<int> chunks{0};
  pool.parallel_for(kBegin, kEnd, kGrain, [&](std::int64_t b, std::int64_t e) {
    chunks.fetch_add(1);
    ASSERT_LT(b, e);
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 0);
  for (std::int64_t i = kBegin; i < kEnd; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
  EXPECT_LE(chunks.load(), pool.threads());
}

TEST(ThreadPoolTest, ParallelForRespectsGrain) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  std::mutex mu;
  std::int64_t min_chunk = 1 << 30;
  pool.parallel_for(0, 100, 40, [&](std::int64_t b, std::int64_t e) {
    chunks.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    min_chunk = std::min(min_chunk, e - b);
  });
  // ceil(100 / 40) = 3 chunks at most; every chunk >= ~range/chunks items.
  EXPECT_LE(chunks.load(), 3);
  EXPECT_GE(min_chunk, 33);
}

TEST(ThreadPoolTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.run_chunks(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.run_chunks(5, [&](int i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  // Work submitted from inside a pool worker must not fan out again —
  // otherwise kernel parallel_for inside a parallel client would deadlock on
  // a saturated pool.
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.run_chunks(3, [&](int) {
    const auto worker = std::this_thread::get_id();
    pool.parallel_for(0, 100, 1, [&](std::int64_t b, std::int64_t e) {
      EXPECT_EQ(std::this_thread::get_id(), worker);
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(inner_total.load(), 300);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(8,
                               [&](int i) {
                                 if (i == 5) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  // Pool still usable after a failed group.
  std::atomic<int> ok{0};
  pool.run_chunks(4, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPoolTest, UsesMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  pool.run_chunks(4, [&](int) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }
    arrived.fetch_add(1);
    // Spin briefly so chunks overlap and can't all be claimed by one thread.
    const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    while (arrived.load() < 4 && std::chrono::steady_clock::now() < until) {
    }
  });
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  const int before = num_threads();
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  EXPECT_EQ(ThreadPool::global().threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(before);
}

TEST(ThreadPoolTest, GrainForScalesInverselyWithCost) {
  EXPECT_GE(grain_for(1), grain_for(100));
  EXPECT_GE(grain_for(1 << 20), 1);  // never zero
  EXPECT_GE(grain_for(0), 1);
  EXPECT_EQ(grain_for(1), 16384);
}

}  // namespace
}  // namespace quickdrop
