// Leveled-logging tests: level filtering, name parsing, env override.
#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace quickdrop {
namespace {

/// Restores the global log level on scope exit so tests cannot leak a level
/// into each other (gtest runs them in one process).
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(LoggingTest, DefaultLevelIsInfo) {
  // Nothing in the test binary changes the level before this suite runs,
  // and LevelGuard restores it everywhere else.
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LevelGuard guard;
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(LoggingTest, FromNameParsesAllLevels) {
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_name("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("error"), LogLevel::kError);
  EXPECT_THROW(log_level_from_name("verbose"), std::invalid_argument);
  EXPECT_THROW(log_level_from_name(""), std::invalid_argument);
  EXPECT_THROW(log_level_from_name("WARN"), std::invalid_argument);  // case-sensitive
}

TEST(LoggingTest, MessagesAtOrAboveThresholdAreEmitted) {
  LevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  QD_LOG_WARN << "above threshold " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN] above threshold 42"), std::string::npos) << out;
}

TEST(LoggingTest, MessagesBelowThresholdAreSilent) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  QD_LOG_WARN << "should not appear";
  QD_LOG_INFO << "nor this";
  QD_LOG_DEBUG << "nor this";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LoggingTest, DebugLevelEmitsEverything) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  QD_LOG_DEBUG << "d";
  QD_LOG_ERROR << "e";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[DEBUG] d"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] e"), std::string::npos);
}

TEST(LoggingTest, EnvOverrideAppliesValidLevels) {
  LevelGuard guard;
  ASSERT_EQ(setenv("QUICKDROP_LOG_LEVEL", "error", 1), 0);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  unsetenv("QUICKDROP_LOG_LEVEL");
}

TEST(LoggingTest, EnvOverrideIgnoresGarbage) {
  LevelGuard guard;
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(setenv("QUICKDROP_LOG_LEVEL", "loudest", 1), 0);
  set_log_level_from_env();  // must not throw, must not change the level
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  unsetenv("QUICKDROP_LOG_LEVEL");
  set_log_level_from_env();  // unset: no-op
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace quickdrop
