#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace quickdrop {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.next_u64() != b.next_u64();
  EXPECT_GT(differing, 10);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, NormalMomentsReasonable) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, SplitStreamsIndependentOfParentUsage) {
  Rng parent1(9), parent2(9);
  parent2.next_u64();  // consume from one parent only
  Rng c1 = parent1.split(123);
  Rng c2 = parent2.split(123);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, SplitWithDifferentTagsDiffer) {
  Rng parent(9);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const auto s = rng.sample_without_replacement(10, 7);
  EXPECT_EQ(s.size(), 7u);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 7u);
  for (const int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, SampleWithoutReplacementRejectsBadK) {
  Rng rng(5);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
  EXPECT_THROW(rng.sample_without_replacement(3, -1), std::invalid_argument);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  auto p = rng.permutation(20);
  std::sort(p.begin(), p.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(13);
  for (const float alpha : {0.1f, 1.0f, 10.0f}) {
    const auto v = rng.dirichlet(alpha, 10);
    const float sum = std::accumulate(v.begin(), v.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    for (const float x : v) EXPECT_GT(x, 0.0f);
  }
}

TEST(RngTest, DirichletLowAlphaIsSkewed) {
  // With alpha=0.05 the mass should concentrate on few coordinates; with
  // alpha=100 it should be near-uniform.
  Rng rng(17);
  double max_low = 0, max_high = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const auto low = rng.dirichlet(0.05f, 10);
    const auto high = rng.dirichlet(100.0f, 10);
    max_low += *std::max_element(low.begin(), low.end());
    max_high += *std::max_element(high.begin(), high.end());
  }
  EXPECT_GT(max_low / trials, 0.6);
  EXPECT_LT(max_high / trials, 0.2);
}

TEST(RngTest, DirichletRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(rng.dirichlet(0.0f, 3), std::invalid_argument);
  EXPECT_THROW(rng.dirichlet(1.0f, 0), std::invalid_argument);
}

TEST(RngTest, SerializeRoundTripContinuesStream) {
  Rng rng(21);
  for (int i = 0; i < 37; ++i) rng.next_u64();  // advance mid-stream
  const auto blob = rng.serialize();
  EXPECT_EQ(blob.size(), Rng::kSerializedSize);
  Rng restored = Rng::deserialize(blob);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored.next_u64(), rng.next_u64());
}

TEST(RngTest, SerializePreservesCachedNormal) {
  // Box-Muller caches the second sample; a round trip mid-pair must not
  // drop it or the resumed stream would be offset by one normal draw.
  Rng rng(22);
  rng.normal();  // consumes one of the pair, caches the other
  Rng restored = Rng::deserialize(rng.serialize());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(restored.normal(), rng.normal());
}

TEST(RngTest, SerializePreservesSplitAnchor) {
  // Tagged splits are anchored to the construction seed, which must survive
  // the round trip — resumed runs re-derive identical per-client streams.
  Rng original(23);
  original.next_u64();
  Rng restored = Rng::deserialize(original.serialize());
  Rng a = original.split(991), b = restored.split(991);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DeserializeRejectsMalformedBlobs) {
  Rng rng(24);
  auto blob = rng.serialize();
  EXPECT_THROW(Rng::deserialize(std::span(blob.data(), blob.size() - 1)),
               std::invalid_argument);
  EXPECT_THROW(Rng::deserialize({}), std::invalid_argument);
  blob[8 * 5] = 0xFF;  // cached-normal flag must be 0 or 1
  EXPECT_THROW(Rng::deserialize(blob), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop
