#include "util/table.h"

#include <gtest/gtest.h>

namespace quickdrop {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("| x |   |"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.1234), "12.34%");
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
}

}  // namespace
}  // namespace quickdrop
