#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "nn/convnet.h"
#include "nn/layers.h"

namespace quickdrop::nn {
namespace {

Tensor seq_tensor(Shape shape, float start = 0.1f, float step = 0.23f) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t.at(i) = start + step * static_cast<float>(i % 11);
  return t;
}

TEST(LinearTest, OutputShapeAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  const auto out = layer.forward_tensor(Tensor::zeros({2, 4}));
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  // Zero input -> output equals the (zero-initialized) bias.
  EXPECT_FLOAT_EQ(out.value().at(0), 0.0f);
}

TEST(LinearTest, KnownValue) {
  Rng rng(1);
  Linear layer(2, 1, rng);
  layer.weight().mutable_value() = Tensor({1, 2}, {2.0f, -1.0f});
  layer.bias().mutable_value() = Tensor({1}, {0.5f});
  const auto out = layer.forward_tensor(Tensor({1, 2}, {3.0f, 4.0f}));
  EXPECT_FLOAT_EQ(out.value().item(), 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(LinearTest, RejectsBadInputRank) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_THROW(layer.forward_tensor(Tensor::zeros({4})), std::invalid_argument);
}

TEST(LinearTest, GradcheckThroughLayer) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  const auto f = [&](const std::vector<ag::Var>& v) {
    return ag::mean_all(ag::square(layer.forward(v[0])));
  };
  EXPECT_LT(ag::max_gradient_error(f, {seq_tensor({2, 3})}), 1e-2);
}

TEST(Conv2dTest, OutputShape) {
  Rng rng(1);
  Conv2d conv(2, 5, 3, 1, 1, rng);
  const auto out = conv.forward_tensor(Tensor::zeros({2, 2, 6, 6}));
  EXPECT_EQ(out.shape(), (Shape{2, 5, 6, 6}));
}

TEST(Conv2dTest, StrideReducesResolution) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 2, rng);
  const auto out = conv.forward_tensor(Tensor::zeros({1, 1, 8, 8}));
  EXPECT_EQ(out.shape(), (Shape{1, 1, 4, 4}));
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Rng rng(1);
  Conv2d conv(1, 1, 1, 0, 1, rng);
  conv.weight().mutable_value() = Tensor({1, 1}, {1.0f});
  const Tensor x = seq_tensor({1, 1, 3, 3});
  const auto out = conv.forward_tensor(x).value();
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(out.at(i), x.at(i));
}

TEST(Conv2dTest, BoxFilterKnownValue) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 0, 1, rng);
  conv.weight().mutable_value() = Tensor::ones({1, 9});
  const Tensor x = Tensor::ones({1, 1, 3, 3});
  EXPECT_FLOAT_EQ(conv.forward_tensor(x).value().item(), 9.0f);
}

TEST(Conv2dTest, RejectsChannelMismatch) {
  Rng rng(1);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward_tensor(Tensor::zeros({1, 2, 6, 6})), std::invalid_argument);
}

TEST(Conv2dTest, GradcheckThroughLayer) {
  Rng rng(5);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  const auto f = [&](const std::vector<ag::Var>& v) {
    return ag::mean_all(ag::square(conv.forward(v[0])));
  };
  EXPECT_LT(ag::max_gradient_error(f, {seq_tensor({1, 1, 4, 4})}), 1e-2);
}

TEST(InstanceNormTest, NormalizesPerChannel) {
  InstanceNorm2d norm(2);
  Rng rng(7);
  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng, 3.0f);
  const Tensor y = norm.forward_tensor(x).value();
  // With gamma=1, beta=0 the per-(n,c) mean is ~0 and variance ~1.
  for (int n = 0; n < 2; ++n) {
    for (int c = 0; c < 2; ++c) {
      double mean = 0, var = 0;
      for (int p = 0; p < 16; ++p) mean += y.at((n * 2 + c) * 16 + p);
      mean /= 16;
      for (int p = 0; p < 16; ++p) {
        const double d = y.at((n * 2 + c) * 16 + p) - mean;
        var += d * d;
      }
      var /= 16;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(InstanceNormTest, AffineParametersApply) {
  InstanceNorm2d norm(1);
  auto params = norm.parameters();
  params[0].mutable_value().fill(2.0f);  // gamma
  params[1].mutable_value().fill(5.0f);  // beta
  Rng rng(7);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor y = norm.forward_tensor(x).value();
  double mean = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) mean += y.at(i);
  EXPECT_NEAR(mean / static_cast<double>(y.numel()), 5.0, 1e-3);
}

TEST(InstanceNormTest, GradcheckThroughLayer) {
  InstanceNorm2d norm(2);
  const auto f = [&](const std::vector<ag::Var>& v) {
    return ag::mean_all(ag::square(norm.forward(v[0])));
  };
  EXPECT_LT(ag::max_gradient_error(f, {seq_tensor({1, 2, 2, 2}, 0.3f, 0.41f)}, 1e-3f), 3e-2);
}

TEST(AvgPoolTest, KnownValues) {
  AvgPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(pool.forward_tensor(x).value().item(), 2.5f);
}

TEST(AvgPoolTest, ShapeAndIndivisibleThrows) {
  AvgPool2d pool(2);
  EXPECT_EQ(pool.forward_tensor(Tensor::zeros({2, 3, 8, 8})).shape(), (Shape{2, 3, 4, 4}));
  EXPECT_THROW(pool.forward_tensor(Tensor::zeros({1, 1, 5, 4})), std::invalid_argument);
}

TEST(AvgPoolTest, PoolingIsExactMeanPerWindow) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  const Tensor y = pool.forward_tensor(x).value();
  EXPECT_FLOAT_EQ(y.at(0), (0 + 1 + 4 + 5) / 4.0f);
  EXPECT_FLOAT_EQ(y.at(3), (10 + 11 + 14 + 15) / 4.0f);
}

TEST(FlattenTest, Shape) {
  Flatten flatten;
  EXPECT_EQ(flatten.forward_tensor(Tensor::zeros({2, 3, 4, 5})).shape(), (Shape{2, 60}));
}

TEST(ReluTest, Values) {
  ReLU relu;
  const auto y = relu.forward_tensor(Tensor({3}, {-1.0f, 0.0f, 2.0f})).value();
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 2.0f);
}

TEST(SequentialTest, ChainsAndCollectsParameters) {
  Rng rng(1);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 8, rng)).add(std::make_unique<ReLU>());
  net.add(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(net.parameters().size(), 4u);
  EXPECT_EQ(net.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(net.forward_tensor(Tensor::zeros({3, 4})).shape(), (Shape{3, 2}));
}

}  // namespace
}  // namespace quickdrop::nn
