#include <gtest/gtest.h>

#include "nn/convnet.h"

namespace quickdrop::nn {
namespace {

TEST(ConvNetTest, DefaultConfigBuildsAndClassifies) {
  ConvNetConfig cfg;
  Rng rng(1);
  auto net = make_convnet(cfg, rng);
  const auto out = net->forward_tensor(Tensor::zeros({2, 3, 12, 12}));
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
}

TEST(ConvNetTest, ConfigValidation) {
  ConvNetConfig cfg;
  cfg.image_size = 6;  // 6 -> 3 -> cannot halve again at depth 2
  cfg.depth = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.depth = 1;
  EXPECT_NO_THROW(cfg.validate());
  cfg.num_classes = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConvNetTest, FinalSpatial) {
  ConvNetConfig cfg;
  cfg.image_size = 16;
  cfg.depth = 3;
  EXPECT_EQ(cfg.final_spatial(), 2);
}

TEST(ConvNetTest, DepthControlsLayerCount) {
  ConvNetConfig cfg;
  cfg.image_size = 16;
  cfg.depth = 3;
  Rng rng(1);
  auto net = make_convnet(cfg, rng);
  // 3 blocks of 4 layers + flatten + linear.
  EXPECT_EQ(net->size(), 3u * 4u + 2u);
}

TEST(ConvNetTest, DifferentSeedsGiveDifferentInit) {
  ConvNetConfig cfg;
  Rng rng1(1), rng2(2);
  auto a = make_convnet(cfg, rng1);
  auto b = make_convnet(cfg, rng2);
  const auto pa = a->parameters()[0].value();
  const auto pb = b->parameters()[0].value();
  bool any_diff = false;
  for (std::int64_t i = 0; i < pa.numel(); ++i) any_diff = any_diff || pa.at(i) != pb.at(i);
  EXPECT_TRUE(any_diff);
}

TEST(ConvNetTest, SameSeedReproducible) {
  ConvNetConfig cfg;
  Rng rng1(5), rng2(5);
  auto a = make_convnet(cfg, rng1);
  auto b = make_convnet(cfg, rng2);
  const auto pa = a->parameters()[0].value();
  const auto pb = b->parameters()[0].value();
  for (std::int64_t i = 0; i < pa.numel(); ++i) EXPECT_FLOAT_EQ(pa.at(i), pb.at(i));
}

TEST(MlpTest, ShapeAndParams) {
  Rng rng(1);
  auto mlp = make_mlp(3, 8, 2, rng);
  EXPECT_EQ(mlp->forward_tensor(Tensor::zeros({5, 3})).shape(), (Shape{5, 2}));
  EXPECT_EQ(mlp->num_parameters(), 3 * 8 + 8 + 8 * 2 + 2);
}

}  // namespace
}  // namespace quickdrop::nn
