// Parameter-plane tests: StateLayout hashing, FlatState kernels, the
// double-precision weighted_average contract, thread-count invariance of the
// pooled kernels, and fuzz-style negative tests over mutated serialized
// streams (satellites of the flat-state refactor; see DESIGN.md §11).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nn/convnet.h"
#include "nn/state.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using quickdrop::Rng;
using quickdrop::Shape;
using quickdrop::Tensor;
using quickdrop::nn::FlatState;
using quickdrop::nn::ModelState;
using quickdrop::nn::StateError;
using quickdrop::nn::StateLayout;

/// Deterministic pseudo-values without depending on Rng stream layout.
float synth_value(std::int64_t i, float phase) {
  return 0.001f * static_cast<float>((i * 2654435761LL) % 2003) - 1.0f + phase;
}

ModelState make_state(const std::vector<Shape>& shapes, float phase) {
  auto layout = StateLayout::of_shapes(shapes);
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = synth_value(static_cast<std::int64_t>(i), phase);
  }
  return {std::move(layout), std::move(values)};
}

const std::vector<Shape> kShapes = {{7, 3, 3, 3}, {7}, {33, 7}, {33}};

void expect_bitwise_equal(const ModelState& a, const ModelState& b) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << "flat index " << i;
  }
}

/// Restores the ambient thread count when a test returns.
struct PoolScope {
  explicit PoolScope(int threads) : saved(quickdrop::num_threads()) {
    quickdrop::set_num_threads(threads);
  }
  ~PoolScope() { quickdrop::set_num_threads(saved); }
  int saved;
};

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

TEST(StateLayout, OffsetsAndTotals) {
  const auto layout = StateLayout::of_shapes({{2, 3}, {5}, {1, 1, 4}});
  EXPECT_EQ(layout->size(), 3u);
  EXPECT_EQ(layout->offset(0), 0);
  EXPECT_EQ(layout->offset(1), 6);
  EXPECT_EQ(layout->offset(2), 11);
  EXPECT_EQ(layout->total(), 15);
  EXPECT_EQ(layout->numel(0), 6);
  EXPECT_EQ(layout->numel(2), 4);
}

TEST(StateLayout, HashSeparatesShapeLists) {
  const auto a = StateLayout::of_shapes({{2, 3}, {5}});
  const auto b = StateLayout::of_shapes({{2, 3}, {5}});
  EXPECT_EQ(a->hash(), b->hash());
  // Same total numel, different split -> different hash.
  EXPECT_NE(a->hash(), StateLayout::of_shapes({{3, 2}, {5}})->hash());
  EXPECT_NE(a->hash(), StateLayout::of_shapes({{2, 3, 5}})->hash());
  EXPECT_NE(a->hash(), StateLayout::of_shapes({{2, 3}})->hash());
  EXPECT_NE(a->hash(), StateLayout::of_shapes({})->hash());
}

TEST(StateLayout, DerivedStatesShareTheManifest) {
  const auto a = make_state(kShapes, 0.0f);
  const auto b = make_state(kShapes, 0.5f);
  // subtract/zeros_like propagate a's manifest pointer, not just its hash.
  EXPECT_EQ(quickdrop::nn::subtract(a, b).layout().get(), a.layout().get());
  EXPECT_EQ(quickdrop::nn::zeros_like(a).layout().get(), a.layout().get());
  const std::vector<ModelState> states = {a, b};
  const std::vector<float> weights = {0.5f, 0.5f};
  EXPECT_EQ(quickdrop::nn::weighted_average(states, weights).layout().get(), a.layout().get());
}

TEST(FlatState, ConstructorRejectsSizeMismatch) {
  auto layout = StateLayout::of_shapes({{2, 2}});
  EXPECT_THROW(FlatState(layout, std::vector<float>(3)), std::invalid_argument);
}

TEST(FlatState, KernelsRejectLayoutMismatch) {
  auto a = make_state({{4}}, 0.0f);
  const auto b = make_state({{2, 2}}, 0.0f);
  EXPECT_THROW(quickdrop::nn::axpy(a, b, 1.0f), std::invalid_argument);
  EXPECT_THROW(quickdrop::nn::subtract(a, b), std::invalid_argument);
  EXPECT_THROW(quickdrop::nn::l2_distance(a, b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Module interop
// ---------------------------------------------------------------------------

TEST(FlatState, SnapshotIntoMatchesStateOfAndLoadRoundTrips) {
  Rng rng(7);
  const quickdrop::nn::ConvNetConfig config{
      .in_channels = 1, .image_size = 8, .num_classes = 3, .width = 4, .depth = 1};
  auto net = quickdrop::nn::make_convnet(config, rng);
  const ModelState snap = quickdrop::nn::state_of(*net);

  ModelState preallocated{snap.layout()};
  quickdrop::nn::snapshot_into(*net, preallocated);
  expect_bitwise_equal(snap, preallocated);

  // Perturb, load back, snapshot again: must round-trip exactly.
  ModelState perturbed = snap;
  quickdrop::nn::scale(perturbed, -1.5f);
  quickdrop::nn::load_state(*net, perturbed);
  expect_bitwise_equal(quickdrop::nn::state_of(*net), perturbed);

  // snapshot_into with a foreign layout is a typed error.
  ModelState wrong{StateLayout::of_shapes({{3}})};
  EXPECT_THROW(quickdrop::nn::snapshot_into(*net, wrong), StateError);
}

TEST(FlatState, FromTensorsMatchesPerTensorContents) {
  Tensor a({2, 3});
  Tensor b({4});
  for (std::int64_t i = 0; i < a.numel(); ++i) a.at(i) = static_cast<float>(i) * 0.25f;
  for (std::int64_t i = 0; i < b.numel(); ++i) b.at(i) = -static_cast<float>(i);
  const auto state = FlatState::from_tensors(std::vector<Tensor>{a, b});
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state.numel(), 10);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(state.at(i), a.at(i));
  for (std::int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(state.at(6 + i), b.at(i));
  // tensor(i) materializes an independent deep copy.
  Tensor back = state.tensor(1);
  back.at(0) = 99.0f;
  EXPECT_NE(back.at(0), state.at(6));
}

// ---------------------------------------------------------------------------
// weighted_average: double-precision accumulation
// ---------------------------------------------------------------------------

TEST(StateKernels, WeightedAverageMatchesSerialDoubleOracle) {
  // Many small-weight clients: float accumulation would lose low-order bits;
  // the kernel must match a serial double-precision oracle bitwise.
  constexpr int kClients = 96;
  std::vector<ModelState> states;
  std::vector<float> weights;
  states.reserve(kClients);
  float weight_sum = 0.0f;
  for (int c = 0; c < kClients; ++c) {
    states.push_back(make_state(kShapes, 0.01f * static_cast<float>(c)));
    const float w = 1.0f / static_cast<float>(kClients + (c % 7));
    weights.push_back(w);
    weight_sum += w;
  }
  (void)weight_sum;
  const ModelState avg = quickdrop::nn::weighted_average(states, weights);

  for (std::int64_t u = 0; u < avg.numel(); ++u) {
    double acc = 0.0;
    for (int c = 0; c < kClients; ++c) {
      acc += static_cast<double>(weights[static_cast<std::size_t>(c)]) *
             static_cast<double>(states[static_cast<std::size_t>(c)].at(u));
    }
    ASSERT_EQ(avg.at(u), static_cast<float>(acc)) << "flat index " << u;
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance
// ---------------------------------------------------------------------------

TEST(StateKernels, BitwiseIdenticalAcrossThreadCounts) {
  // Big enough that the pooled kernels actually split into multiple chunks.
  const std::vector<Shape> big = {{64, 33, 3, 3}, {64}, {150, 64}, {150}};
  const auto a0 = make_state(big, 0.0f);
  const auto b0 = make_state(big, 0.25f);
  std::vector<ModelState> clients;
  std::vector<float> weights;
  for (int c = 0; c < 9; ++c) {
    clients.push_back(make_state(big, 0.05f * static_cast<float>(c)));
    weights.push_back(1.0f / 9.0f);
  }

  struct Results {
    ModelState axpy_out, sub, avg;
    double norm = 0.0, dist = 0.0;
  };
  auto run = [&](int threads) {
    PoolScope scope(threads);
    Results r;
    r.axpy_out = a0;
    quickdrop::nn::axpy(r.axpy_out, b0, 0.3f);
    quickdrop::nn::scale(r.axpy_out, 1.7f);
    r.sub = quickdrop::nn::subtract(a0, b0);
    r.avg = quickdrop::nn::weighted_average(clients, weights);
    r.norm = quickdrop::nn::l2_norm(a0);
    r.dist = quickdrop::nn::l2_distance(a0, b0);
    EXPECT_TRUE(quickdrop::nn::all_finite(r.avg));
    return r;
  };

  const Results base = run(1);
  for (const int threads : {2, 4, 8}) {
    const Results r = run(threads);
    expect_bitwise_equal(base.axpy_out, r.axpy_out);
    expect_bitwise_equal(base.sub, r.sub);
    expect_bitwise_equal(base.avg, r.avg);
    EXPECT_EQ(base.norm, r.norm) << threads << " threads";
    EXPECT_EQ(base.dist, r.dist) << threads << " threads";
  }
}

TEST(StateKernels, L2DistanceMatchesSubtractThenNormBitwise) {
  const auto a = make_state(kShapes, 0.0f);
  const auto b = make_state(kShapes, 0.333f);
  EXPECT_EQ(quickdrop::nn::l2_distance(a, b),
            quickdrop::nn::l2_norm(quickdrop::nn::subtract(a, b)));
}

// ---------------------------------------------------------------------------
// Serialization: round trips and fuzz-style negative tests
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> u64_le(std::uint64_t v) {
  std::vector<std::uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  return out;
}

void append_u64(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  const auto le = u64_le(v);
  bytes.insert(bytes.end(), le.begin(), le.end());
}

void append_f32(std::vector<std::uint8_t>& bytes, float v) {
  std::uint8_t raw[sizeof(float)];
  std::memcpy(raw, &v, sizeof(float));
  bytes.insert(bytes.end(), raw, raw + sizeof(float));
}

void overwrite_u64(std::vector<std::uint8_t>& bytes, std::size_t offset, std::uint64_t v) {
  const auto le = u64_le(v);
  std::copy(le.begin(), le.end(), bytes.begin() + static_cast<std::ptrdiff_t>(offset));
}

TEST(StateSerialization, RoundTripPreservesLayoutAndPayload) {
  const auto state = make_state(kShapes, 0.125f);
  const auto bytes = quickdrop::nn::serialize_state(state);
  const auto back = quickdrop::nn::deserialize_state(bytes);
  ASSERT_FALSE(back.empty());
  EXPECT_EQ(back.layout()->hash(), state.layout()->hash());
  expect_bitwise_equal(state, back);
}

TEST(StateSerialization, EmptyStateRoundTripsToEmpty) {
  const auto bytes = quickdrop::nn::serialize_state(ModelState{});
  const auto back = quickdrop::nn::deserialize_state(bytes);
  EXPECT_TRUE(back.empty());
}

TEST(StateSerialization, AcceptsLegacyV1Stream) {
  // v1: count, then per tensor (rank, dims..., floats). No magic, no hash.
  Tensor t({2, 2});
  for (std::int64_t i = 0; i < 4; ++i) t.at(i) = static_cast<float>(i) + 0.5f;
  std::vector<std::uint8_t> bytes;
  append_u64(bytes, 1);  // one tensor
  append_u64(bytes, 2);  // rank
  append_u64(bytes, 2);
  append_u64(bytes, 2);
  for (std::int64_t i = 0; i < 4; ++i) append_f32(bytes, t.at(i));
  const auto back = quickdrop::nn::deserialize_state(bytes);
  ASSERT_EQ(back.size(), 1u);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(back.at(i), t.at(i));
}

TEST(StateSerialization, EveryTruncationOfV2StreamThrowsTypedError) {
  const auto state = make_state({{3, 4}, {5}}, 0.25f);
  const auto bytes = quickdrop::nn::serialize_state(state);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        quickdrop::nn::deserialize_state(std::span(bytes.data(), len)), StateError)
        << "prefix of " << len << " bytes must not deserialize";
  }
}

TEST(StateSerialization, EveryTruncationOfV1StreamThrowsTypedError) {
  std::vector<std::uint8_t> bytes;
  append_u64(bytes, 2);  // two tensors
  append_u64(bytes, 1);
  append_u64(bytes, 3);
  for (int i = 0; i < 3; ++i) append_f32(bytes, 1.0f);
  append_u64(bytes, 1);
  append_u64(bytes, 2);
  for (int i = 0; i < 2; ++i) append_f32(bytes, 2.0f);
  ASSERT_FALSE(quickdrop::nn::deserialize_state(bytes).empty());  // sanity: valid
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        quickdrop::nn::deserialize_state(std::span(bytes.data(), len)), StateError)
        << "prefix of " << len << " bytes must not deserialize";
  }
}

TEST(StateSerialization, TrailingBytesAreRejected) {
  auto bytes = quickdrop::nn::serialize_state(make_state({{2, 2}}, 0.0f));
  bytes.push_back(0);
  EXPECT_THROW(quickdrop::nn::deserialize_state(bytes), StateError);
}

TEST(StateSerialization, LayoutHashMismatchIsRejected) {
  auto bytes = quickdrop::nn::serialize_state(make_state({{2, 2}}, 0.0f));
  // Byte 8 is the low byte of the stored layout hash.
  bytes[8] ^= 0xFF;
  EXPECT_THROW(quickdrop::nn::deserialize_state(bytes), StateError);
}

TEST(StateSerialization, OversizedCountRankAndDimsAreRejected) {
  const auto state = make_state({{2, 2}}, 0.0f);
  const auto bytes = quickdrop::nn::serialize_state(state);

  {
    auto mutated = bytes;  // parameter count beyond the cap
    overwrite_u64(mutated, 16, (1u << 20) + 1);
    EXPECT_THROW(quickdrop::nn::deserialize_state(mutated), StateError);
  }
  {
    auto mutated = bytes;  // rank beyond the cap
    overwrite_u64(mutated, 24, 17);
    EXPECT_THROW(quickdrop::nn::deserialize_state(mutated), StateError);
  }
  {
    auto mutated = bytes;  // single dimension beyond the element cap
    overwrite_u64(mutated, 32, (std::uint64_t{1} << 31) + 1);
    EXPECT_THROW(quickdrop::nn::deserialize_state(mutated), StateError);
  }
  {
    auto mutated = bytes;  // dims whose product overflows the element cap
    overwrite_u64(mutated, 32, std::uint64_t{1} << 30);
    overwrite_u64(mutated, 40, std::uint64_t{1} << 30);
    EXPECT_THROW(quickdrop::nn::deserialize_state(mutated), StateError);
  }
  {
    auto mutated = bytes;  // declared total disagrees with the manifest
    overwrite_u64(mutated, 48, 5);
    EXPECT_THROW(quickdrop::nn::deserialize_state(mutated), StateError);
  }
}

TEST(StateSerialization, ExhaustiveSingleByteCorruptionNeverYieldsPartialState) {
  // Flip every byte of the header region one at a time: each mutation either
  // still deserializes to a complete, well-formed state (e.g. a payload-byte
  // flip or a benign dim rewrite that keeps hash+total consistent — which a
  // hash-preserving flip cannot do, so header flips must throw) or throws
  // StateError. Nothing may crash, hang, or return a half-read state.
  const auto state = make_state({{3, 2}, {4}}, 0.75f);
  const auto bytes = quickdrop::nn::serialize_state(state);
  int threw = 0, survived = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xFF}}) {
      auto mutated = bytes;
      mutated[pos] ^= flip;
      try {
        const auto back = quickdrop::nn::deserialize_state(mutated);
        ++survived;
        // A successful parse must be internally complete.
        EXPECT_EQ(back.numel(),
                  back.empty() ? 0 : back.layout()->total());
      } catch (const StateError&) {
        ++threw;
      }
    }
  }
  // The header (magic/hash/manifest) is self-checking: most flips there must
  // throw; payload flips survive. Both classes must be non-empty.
  EXPECT_GT(threw, 0);
  EXPECT_GT(survived, 0);
}

}  // namespace
