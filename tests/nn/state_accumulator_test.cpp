// Streaming StateAccumulator (nn/state_accumulator.h): single-lane folds
// reproduce nn::weighted_average bit for bit, the canonical 64-lane combine
// is bitwise-invariant across thread counts, fold_range is per-element
// identical to fold, and the lifecycle contract (finalize consumes, reset
// re-arms) is enforced.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "nn/state.h"
#include "nn/state_accumulator.h"
#include "util/thread_pool.h"

namespace {

using quickdrop::Shape;
using quickdrop::nn::ModelState;
using quickdrop::nn::StateAccumulator;
using quickdrop::nn::StateError;
using quickdrop::nn::StateLayout;

float synth_value(std::int64_t i, float phase) {
  return 0.001f * static_cast<float>((i * 2654435761LL) % 2003) - 1.0f + phase;
}

// Spans several kStateBlock reduction blocks with a ragged tail.
const std::vector<Shape> kShapes = {{16, 3, 3, 3}, {16}, {200, 173}, {173}, {3}};

ModelState make_state(const std::shared_ptr<const StateLayout>& layout, float phase) {
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = synth_value(static_cast<std::int64_t>(i), phase);
  }
  return {layout, std::move(values)};
}

void expect_bitwise_equal(const ModelState& a, const ModelState& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a.at(i)), std::bit_cast<std::uint32_t>(b.at(i)))
        << what << " diverges at flat index " << i;
  }
}

struct PoolScope {
  explicit PoolScope(int threads) : saved(quickdrop::num_threads()) {
    quickdrop::set_num_threads(threads);
  }
  ~PoolScope() { quickdrop::set_num_threads(saved); }
  int saved;
};

TEST(StateAccumulator, SingleLaneMatchesWeightedAverageBitwise) {
  const auto layout = StateLayout::of_shapes(kShapes);
  std::vector<ModelState> states;
  std::vector<float> weights;
  for (int c = 0; c < 7; ++c) {
    states.push_back(make_state(layout, 0.1f * static_cast<float>(c)));
    weights.push_back(0.05f + 0.11f * static_cast<float>(c));
  }
  const ModelState batch = quickdrop::nn::weighted_average(states, weights);

  for (const int threads : {1, 4, 8}) {
    PoolScope pool(threads);
    StateAccumulator acc(layout, /*lanes=*/1);
    for (std::size_t c = 0; c < states.size(); ++c) {
      acc.fold(states[c], static_cast<double>(weights[c]));
    }
    const ModelState streamed = acc.finalize();
    expect_bitwise_equal(streamed, batch, "single-lane streaming vs weighted_average");
  }
}

TEST(StateAccumulator, CanonicalLanesBitwiseInvariantAcrossThreads) {
  const auto layout = StateLayout::of_shapes(kShapes);
  std::vector<ModelState> states;
  for (int c = 0; c < 23; ++c) states.push_back(make_state(layout, 0.07f * c));

  ModelState reference;
  for (const int threads : {1, 4, 8}) {
    PoolScope pool(threads);
    StateAccumulator acc(layout);
    double total_weight = 0.0;
    for (std::size_t c = 0; c < states.size(); ++c) {
      const double w = static_cast<double>(1 + (c * 13) % 40);
      acc.fold(states[c], w, static_cast<int>((c * 29) % StateAccumulator::kLanes));
      total_weight += w;
    }
    ModelState merged = acc.finalize_scaled(1.0 / total_weight);
    if (reference.empty()) {
      reference = std::move(merged);
    } else {
      expect_bitwise_equal(merged, reference, "canonical 64-lane merge across threads");
    }
  }
}

TEST(StateAccumulator, FoldRangeMatchesFoldBitwise) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState a = make_state(layout, 0.0f);
  const ModelState b = make_state(layout, 0.4f);

  StateAccumulator whole(layout);
  whole.fold(a, 3.0, 5);
  whole.fold(b, 2.0, 9);

  StateAccumulator blocked(layout);
  const auto& bounds = layout->block_bounds();
  for (const auto& [state, weight, lane] :
       {std::tuple{&a, 3.0, 5}, std::tuple{&b, 2.0, 9}}) {
    const auto data = state->data();
    for (std::size_t blk = 0; blk + 1 < bounds.size(); ++blk) {
      const std::int64_t lo = bounds[blk];
      blocked.fold_range(lane, lo, data.data() + lo, bounds[blk + 1] - lo, weight);
    }
  }
  expect_bitwise_equal(blocked.finalize_scaled(0.2), whole.finalize_scaled(0.2),
                       "fold_range block-by-block vs whole-state fold");
}

TEST(StateAccumulator, FinalizeScaledByOneMatchesFinalize) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState a = make_state(layout, 0.0f);
  StateAccumulator acc(layout);
  acc.fold(a, 0.625, 3);
  const ModelState plain = acc.finalize();
  acc.reset();
  acc.fold(a, 0.625, 3);
  // Multiplying the double accumulator by exactly 1.0 cannot change bits.
  expect_bitwise_equal(acc.finalize_scaled(1.0), plain, "finalize_scaled(1.0) vs finalize");
}

TEST(StateAccumulator, ResetReArmsAndReproduces) {
  const auto layout = StateLayout::of_shapes(kShapes);
  const ModelState a = make_state(layout, 0.0f);
  const ModelState b = make_state(layout, 0.9f);
  StateAccumulator acc(layout);
  acc.fold(a, 1.5, 0);
  acc.fold(b, 2.5, 17);
  const ModelState first = acc.finalize_scaled(0.25);
  EXPECT_THROW(acc.fold(a, 1.0), StateError);  // consumed until reset
  acc.reset();
  EXPECT_EQ(acc.folds(), 0);
  acc.fold(a, 1.5, 0);
  acc.fold(b, 2.5, 17);
  expect_bitwise_equal(acc.finalize_scaled(0.25), first, "post-reset replay");
}

TEST(StateAccumulator, LifecycleAndArgumentErrors) {
  const auto layout = StateLayout::of_shapes(kShapes);
  EXPECT_THROW(StateAccumulator(layout, 3), StateError);    // not a power of two
  EXPECT_THROW(StateAccumulator(layout, 0), StateError);
  EXPECT_THROW(StateAccumulator(layout, 128), StateError);  // above kLanes

  StateAccumulator acc(layout, 8);
  const ModelState a = make_state(layout, 0.0f);
  EXPECT_THROW(acc.fold(a, 1.0, 8), StateError);   // lane out of range
  EXPECT_THROW(acc.fold(a, 1.0, -1), StateError);
  EXPECT_THROW(acc.finalize(), StateError);        // nothing folded
  acc.reset();

  // Layout-mismatched state.
  const auto other = StateLayout::of_shapes({{4, 4}});
  EXPECT_THROW(acc.fold(make_state(other, 0.0f), 1.0), StateError);

  EXPECT_FALSE(acc.lane_used(2));
  acc.fold(a, 1.0, 2);
  EXPECT_TRUE(acc.lane_used(2));
  EXPECT_EQ(acc.folds(), 1);
  EXPECT_GT(acc.memory_bytes(), 0);
}

}  // namespace
