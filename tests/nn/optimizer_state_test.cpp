#include <gtest/gtest.h>

#include "nn/convnet.h"
#include "nn/optimizer.h"
#include "nn/state.h"

namespace quickdrop::nn {
namespace {

TEST(SgdTest, DescentAndAscentDirections) {
  auto p = ag::Var::leaf(Tensor({2}, {1.0f, 2.0f}));
  Sgd opt({p}, 0.5f);
  const std::vector<Tensor> grads = {Tensor({2}, {2.0f, -4.0f})};
  opt.step_tensors(grads, UpdateDirection::kDescent);
  EXPECT_FLOAT_EQ(p.value().at(0), 0.0f);
  EXPECT_FLOAT_EQ(p.value().at(1), 4.0f);
  opt.step_tensors(grads, UpdateDirection::kAscent);
  EXPECT_FLOAT_EQ(p.value().at(0), 1.0f);
  EXPECT_FLOAT_EQ(p.value().at(1), 2.0f);
}

TEST(SgdTest, RejectsBadArguments) {
  auto p = ag::Var::leaf(Tensor({2}));
  EXPECT_THROW(Sgd({p}, 0.0f), std::invalid_argument);
  EXPECT_THROW(Sgd({p}, 0.1f, 1.0f), std::invalid_argument);
  EXPECT_THROW(Sgd({p}, 0.1f, -0.1f), std::invalid_argument);
  Sgd opt({p}, 0.1f);
  EXPECT_THROW(opt.step_tensors({}, UpdateDirection::kDescent), std::invalid_argument);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  auto p = ag::Var::leaf(Tensor({1}, {0.0f}));
  Sgd opt({p}, 1.0f, 0.5f);
  const std::vector<Tensor> g = {Tensor({1}, {1.0f})};
  opt.step_tensors(g);  // v=1, p=-1
  EXPECT_FLOAT_EQ(p.value().item(), -1.0f);
  opt.step_tensors(g);  // v=1.5, p=-2.5
  EXPECT_FLOAT_EQ(p.value().item(), -2.5f);
  opt.step_tensors(g);  // v=1.75, p=-4.25
  EXPECT_FLOAT_EQ(p.value().item(), -4.25f);
}

TEST(SgdTest, ZeroMomentumMatchesPlain) {
  auto a = ag::Var::leaf(Tensor({1}, {1.0f}));
  auto b = ag::Var::leaf(Tensor({1}, {1.0f}));
  Sgd plain({a}, 0.3f);
  Sgd with_zero({b}, 0.3f, 0.0f);
  const std::vector<Tensor> g = {Tensor({1}, {2.0f})};
  for (int i = 0; i < 3; ++i) {
    plain.step_tensors(g);
    with_zero.step_tensors(g);
  }
  EXPECT_FLOAT_EQ(a.value().item(), b.value().item());
}

TEST(StateTest, SaveLoadRoundTrip) {
  ConvNetConfig cfg;
  cfg.width = 4;
  cfg.depth = 1;
  Rng rng(1);
  auto a = make_convnet(cfg, rng);
  auto b = make_convnet(cfg, rng);  // different init
  const auto sa = state_of(*a);
  load_state(*b, sa);
  const auto sb = state_of(*b);
  ASSERT_EQ(sa.numel(), sb.numel());
  for (std::int64_t i = 0; i < sa.numel(); ++i) EXPECT_FLOAT_EQ(sa.at(i), sb.at(i));
}

TEST(StateTest, StateIsDeepCopy) {
  ConvNetConfig cfg;
  cfg.width = 4;
  cfg.depth = 1;
  Rng rng(1);
  auto model = make_convnet(cfg, rng);
  auto state = state_of(*model);
  const float before = state.at(0);
  model->parameters()[0].mutable_value().at(0) = before + 42.0f;
  EXPECT_FLOAT_EQ(state.at(0), before);
}

TEST(StateTest, Arithmetic) {
  const Tensor t0({2}, {1, 2}), t1({1}, {3});
  auto a = FlatState::from_tensors(std::vector<Tensor>{t0, t1});
  auto b = FlatState::from_tensors(
      std::vector<Tensor>{Tensor({2}, {10, 20}), Tensor({1}, {30})});
  axpy(a, b, 0.1f);
  EXPECT_FLOAT_EQ(a.at(0), 2.0f);
  EXPECT_FLOAT_EQ(a.at(2), 6.0f);
  scale(a, 2.0f);
  EXPECT_FLOAT_EQ(a.at(1), 8.0f);
  const auto d = subtract(b, a);
  EXPECT_FLOAT_EQ(d.at(0), 6.0f);
  EXPECT_EQ(state_numel(a), 3);
  EXPECT_EQ(state_bytes(a), 12);
}

TEST(StateTest, L2Norm) {
  const auto s = FlatState::from_tensors(std::vector<Tensor>{Tensor({2}, {3, 4})});
  EXPECT_NEAR(l2_norm(s), 5.0, 1e-6);
}

TEST(StateTest, WeightedAverage) {
  const auto a = FlatState::from_tensors(std::vector<Tensor>{Tensor({1}, {0.0f})});
  const auto b = FlatState::from_tensors(std::vector<Tensor>{Tensor({1}, {10.0f})});
  const std::vector<ModelState> states = {a, b};
  const std::vector<float> weights = {0.25f, 0.75f};
  const auto avg = weighted_average(states, weights);
  EXPECT_FLOAT_EQ(avg.at(0), 7.5f);
}

TEST(StateTest, WeightedAverageValidation) {
  const std::vector<ModelState> states;
  const std::vector<float> weights;
  EXPECT_THROW(weighted_average(states, weights), std::invalid_argument);
}

TEST(StateTest, SerializeRoundTrip) {
  const auto s = FlatState::from_tensors(
      std::vector<Tensor>{Tensor({2, 2}, {1, -2, 3.5f, 0}), Tensor({3}, {9, 8, 7})});
  const auto bytes = serialize_state(s);
  const auto back = deserialize_state(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.layout()->shape(0), (Shape{2, 2}));
  EXPECT_EQ(back.layout()->shape(1), (Shape{3}));
  EXPECT_EQ(back.layout()->hash(), s.layout()->hash());
  ASSERT_EQ(back.numel(), s.numel());
  for (std::int64_t i = 0; i < s.numel(); ++i) EXPECT_FLOAT_EQ(back.at(i), s.at(i));
}

TEST(StateTest, DeserializeRejectsTruncated) {
  const auto s = FlatState::from_tensors(std::vector<Tensor>{Tensor({2}, {1, 2})});
  auto bytes = serialize_state(s);
  bytes.pop_back();
  EXPECT_THROW(deserialize_state(bytes), std::invalid_argument);
}

TEST(StateTest, LoadRejectsMismatch) {
  ConvNetConfig cfg;
  cfg.width = 4;
  cfg.depth = 1;
  Rng rng(1);
  auto model = make_convnet(cfg, rng);
  const auto wrong = FlatState::from_tensors(std::vector<Tensor>{Tensor({1})});
  EXPECT_THROW(load_state(*model, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace quickdrop::nn
