// End-to-end gradient checks through the full ConvNet stack — every layer
// type composed, first and second order. This is the exact differentiation
// path QuickDrop's distillation exercises.
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "nn/convnet.h"

namespace quickdrop::nn {
namespace {

std::unique_ptr<Sequential> micro_convnet() {
  ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 4;
  cfg.num_classes = 2;
  cfg.width = 2;
  cfg.depth = 1;
  Rng rng(5);
  return make_convnet(cfg, rng);
}

Tensor micro_input() {
  Rng rng(9);
  return Tensor::randn({2, 1, 4, 4}, rng, 0.7f);
}

TEST(ConvNetGradcheckTest, LossGradWrtInputPixels) {
  auto net = micro_convnet();
  const auto f = [&](const std::vector<ag::Var>& v) {
    return ag::cross_entropy(net->forward(v[0]), {0, 1});
  };
  EXPECT_LT(ag::max_gradient_error(f, {micro_input()}, 1e-2f), 2e-2);
}

TEST(ConvNetGradcheckTest, LossGradWrtEveryParameter) {
  auto net = micro_convnet();
  const Tensor x = micro_input();
  auto params = net->parameters();
  // Wrap each parameter as the differentiated input by temporarily loading
  // candidate values into the live parameter storage.
  for (std::size_t p = 0; p < params.size(); ++p) {
    const Tensor original = params[p].value().clone();
    // Analytic gradient of the live parameter leaf.
    const ag::Var loss = ag::cross_entropy(net->forward(ag::Var::constant(x)), {0, 1});
    const auto g = ag::grad(loss, {params[p]});
    // Numeric gradient by central differences on the storage.
    double max_err = 0.0;
    for (std::int64_t i = 0; i < original.numel(); ++i) {
      const float eps = 1e-2f;
      params[p].mutable_value().copy_from(original);
      params[p].mutable_value().at(i) += eps;
      const double plus = static_cast<double>(
          ag::cross_entropy(net->forward(ag::Var::constant(x)), {0, 1}).value().item());
      params[p].mutable_value().copy_from(original);
      params[p].mutable_value().at(i) -= eps;
      const double minus = static_cast<double>(
          ag::cross_entropy(net->forward(ag::Var::constant(x)), {0, 1}).value().item());
      params[p].mutable_value().copy_from(original);
      const double numeric = (plus - minus) / (2.0 * eps);
      max_err = std::max(max_err,
                         std::abs(numeric - static_cast<double>(g[0].value().at(i))));
    }
    EXPECT_LT(max_err, 2e-2) << "parameter " << p;
  }
}

TEST(ConvNetGradcheckTest, SecondOrderThroughFullNet) {
  // d/dx of <dLoss/dparams, probe> — the distillation derivative — checked
  // numerically through conv, norm, relu, pool and linear at once.
  auto net = micro_convnet();
  const auto params = net->parameters();
  const auto f = [&](const std::vector<ag::Var>& v) {
    const ag::Var loss = ag::cross_entropy(net->forward(v[0]), {0, 1});
    const auto grads =
        ag::grad(loss, std::span<const ag::Var>(params), {.create_graph = true});
    ag::Var acc = ag::scalar(0.0f);
    for (const auto& g : grads) acc = ag::add(acc, ag::sum_all(ag::square(g)));
    return acc;
  };
  EXPECT_LT(ag::max_gradient_error(f, {micro_input()}, 1e-2f), 5e-2);
}

}  // namespace
}  // namespace quickdrop::nn
