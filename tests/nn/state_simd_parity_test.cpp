// SIMD-vs-scalar bitwise parity for every vectorized state-plane kernel at
// 1/4/8 threads (DESIGN.md §13): axpy, scale, subtract, l2_norm/l2_distance
// and weighted_average must produce identical bits whichever microkernel
// table the dispatch layer selected and however the pool partitions them.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "nn/state.h"
#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace {

using quickdrop::Shape;
using quickdrop::nn::ModelState;
using quickdrop::nn::StateLayout;
using quickdrop::simd::Dispatch;

float synth_value(std::int64_t i, float phase) {
  return 0.001f * static_cast<float>((i * 2654435761LL) % 2003) - 1.0f + phase;
}

ModelState make_state(const std::vector<Shape>& shapes, float phase) {
  auto layout = StateLayout::of_shapes(shapes);
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = synth_value(static_cast<std::int64_t>(i), phase);
  }
  return {std::move(layout), std::move(values)};
}

// Spans several kStateBlock reduction blocks with a ragged tail, so lane
// tails, block boundaries and chunk cuts all get exercised.
const std::vector<Shape> kShapes = {{16, 3, 3, 3}, {16}, {200, 173}, {173}, {3}};

void expect_bitwise_equal(const ModelState& a, const ModelState& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a.at(i)), std::bit_cast<std::uint32_t>(b.at(i)))
        << what << " diverges at flat index " << i;
  }
}

struct DispatchScope {
  explicit DispatchScope(Dispatch d) { quickdrop::simd::force_dispatch(d); }
  ~DispatchScope() { quickdrop::simd::force_dispatch(Dispatch::kAuto); }
};

struct PoolScope {
  explicit PoolScope(int threads) : saved(quickdrop::num_threads()) {
    quickdrop::set_num_threads(threads);
  }
  ~PoolScope() { quickdrop::set_num_threads(saved); }
  int saved;
};

/// One full pass over every vectorized state kernel under the ambient
/// dispatch + thread count.
struct KernelResults {
  ModelState axpy_out;
  ModelState scale_out;
  ModelState subtract_out;
  ModelState wavg_out;
  double norm = 0.0;
  double distance = 0.0;
};

KernelResults run_all_kernels() {
  const ModelState a = make_state(kShapes, 0.0f);
  const ModelState b = make_state(kShapes, 0.5f);
  KernelResults r;
  r.axpy_out = a;
  quickdrop::nn::axpy(r.axpy_out, b, 0.3125f);
  r.scale_out = a;
  quickdrop::nn::scale(r.scale_out, 0.731f);
  r.subtract_out = quickdrop::nn::subtract(a, b);
  std::vector<ModelState> states;
  std::vector<float> weights;
  for (int i = 0; i < 7; ++i) {
    states.push_back(make_state(kShapes, 0.1f * static_cast<float>(i)));
    weights.push_back(i % 2 == 0 ? 0.21f : 0.0013f);
  }
  r.wavg_out = quickdrop::nn::weighted_average(states, weights);
  r.norm = quickdrop::nn::l2_norm(a);
  r.distance = quickdrop::nn::l2_distance(a, b);
  return r;
}

TEST(StateSimdParity, AllKernelsBitwiseAcrossDispatchAndThreads) {
  const bool avx2 = quickdrop::simd::avx2_compiled() && quickdrop::simd::avx2_supported();
  KernelResults reference;
  {
    DispatchScope dispatch(Dispatch::kScalar);
    PoolScope pool(1);
    reference = run_all_kernels();
  }
  for (const int threads : {1, 4, 8}) {
    for (const Dispatch d : {Dispatch::kScalar, Dispatch::kAvx2}) {
      if (d == Dispatch::kAvx2 && !avx2) continue;
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " dispatch="
                                      << (d == Dispatch::kScalar ? "scalar" : "avx2"));
      DispatchScope dispatch(d);
      PoolScope pool(threads);
      const KernelResults got = run_all_kernels();
      expect_bitwise_equal(reference.axpy_out, got.axpy_out, "axpy");
      expect_bitwise_equal(reference.scale_out, got.scale_out, "scale");
      expect_bitwise_equal(reference.subtract_out, got.subtract_out, "subtract");
      expect_bitwise_equal(reference.wavg_out, got.wavg_out, "weighted_average");
      EXPECT_EQ(std::bit_cast<std::uint64_t>(reference.norm), std::bit_cast<std::uint64_t>(got.norm));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(reference.distance),
                std::bit_cast<std::uint64_t>(got.distance));
    }
  }
  if (!avx2) {
    GTEST_SKIP() << "AVX2 not available: cross-dispatch half not exercised";
  }
}

TEST(StateSimdParity, L2DistanceStillMatchesSubtractThenNorm) {
  const ModelState a = make_state(kShapes, 0.0f);
  const ModelState b = make_state(kShapes, 0.5f);
  for (const Dispatch d : {Dispatch::kScalar, Dispatch::kAvx2}) {
    if (d == Dispatch::kAvx2 &&
        !(quickdrop::simd::avx2_compiled() && quickdrop::simd::avx2_supported())) {
      continue;
    }
    DispatchScope dispatch(d);
    const double direct = quickdrop::nn::l2_distance(a, b);
    const double via_subtract = quickdrop::nn::l2_norm(quickdrop::nn::subtract(a, b));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(direct), std::bit_cast<std::uint64_t>(via_subtract));
  }
}

}  // namespace
