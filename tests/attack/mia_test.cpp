#include <gtest/gtest.h>

#include <cmath>

#include "attack/mia.h"
#include "fl/client_update.h"
#include "data/synthetic.h"
#include "nn/convnet.h"

namespace quickdrop::attack {
namespace {

data::TrainTest tiny_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 30;
  spec.test_per_class = 30;
  spec.noise = 0.8f;
  spec.seed = 55;
  return data::make_synthetic(spec);
}

std::unique_ptr<nn::Sequential> overfit_model(const data::Dataset& train) {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width = 8;
  cfg.depth = 1;
  Rng rng(3);
  auto model = nn::make_convnet(cfg, rng);
  std::vector<int> pool(static_cast<std::size_t>(train.size()));
  for (int i = 0; i < train.size(); ++i) pool[static_cast<std::size_t>(i)] = i;
  fl::CostMeter cost;
  Rng brng(4);
  for (int step = 0; step < 250; ++step) {
    const auto rows = data::Dataset::sample_batch_indices(pool, 32, brng);
    auto [images, labels] = train.batch(rows);
    fl::sgd_step_on_batch(*model, images, labels, 0.1f, nn::UpdateDirection::kDescent, cost);
  }
  return model;
}

TEST(MiaFeaturesTest, ShapeAndLossValue) {
  const auto tt = tiny_data();
  auto model = overfit_model(tt.train);
  const auto feat = mia_features(*model, tt.train, {0, 1, 2});
  EXPECT_EQ(feat.shape(), (Shape{3, 3}));
  // loss >= 0, confidence in (0,1], entropy >= 0.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(feat.at(i * 3 + 0), 0.0f);
    EXPECT_GT(feat.at(i * 3 + 1), 0.0f);
    EXPECT_LE(feat.at(i * 3 + 1), 1.0f + 1e-5f);
    EXPECT_GE(feat.at(i * 3 + 2), -1e-5f);
  }
}

TEST(MiaFeaturesTest, ConfidentSampleHasLowLossHighConfidence) {
  const auto tt = tiny_data();
  auto model = overfit_model(tt.train);
  const auto feat = mia_features(*model, tt.train, {0});
  // Trained model should be confident on a training sample.
  EXPECT_LT(feat.at(0), 1.0f);   // loss
  EXPECT_GT(feat.at(1), 0.5f);   // confidence
}

TEST(MiaTest, MembersScoreHigherThanNonMembers) {
  const auto tt = tiny_data();
  auto model = overfit_model(tt.train);
  Rng rng(9);
  // Forget set := training rows of class 0; retain := training rows of the
  // other classes. On a model that has NOT unlearned, both should look like
  // members far more often than fresh test samples do.
  const auto fset = tt.train.subset(tt.train.indices_of_class(0));
  std::vector<int> retain_rows;
  for (int i = 0; i < tt.train.size(); ++i) {
    if (tt.train.label(i) != 0) retain_rows.push_back(i);
  }
  const auto rset = tt.train.subset(retain_rows);
  const auto report = run_mia(*model, tt.train, tt.test, fset, rset, rng);
  EXPECT_GT(report.attack_accuracy, 0.5);
  EXPECT_GT(report.retain_member_rate, 0.35);
  // No unlearning happened: the forget set is still recognized.
  EXPECT_GT(report.forget_member_rate, 0.35);
}

TEST(MiaTest, EmptySetsReportZero) {
  const auto tt = tiny_data();
  auto model = overfit_model(tt.train);
  Rng rng(9);
  const data::Dataset empty(tt.train.image_shape(), 3);
  const auto report = run_mia(*model, tt.train, tt.test, empty, empty, rng);
  EXPECT_DOUBLE_EQ(report.forget_member_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.retain_member_rate, 0.0);
}

}  // namespace
}  // namespace quickdrop::attack
