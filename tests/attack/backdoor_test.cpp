#include <gtest/gtest.h>

#include "attack/backdoor.h"
#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client_update.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace quickdrop::attack {
namespace {

TEST(TriggerTest, StampsRequestedCorner) {
  Tensor img = Tensor::zeros({1, 6, 6});
  stamp_trigger(img, {.size = 2, .intensity = 5.0f, .corner = 0});
  EXPECT_FLOAT_EQ(img.at(0), 5.0f);              // (0,0)
  EXPECT_FLOAT_EQ(img.at(7), 5.0f);              // (1,1)
  EXPECT_FLOAT_EQ(img.at(35), 0.0f);             // (5,5) untouched
  Tensor img2 = Tensor::zeros({1, 6, 6});
  stamp_trigger(img2, {.size = 2, .intensity = 3.0f, .corner = 3});
  EXPECT_FLOAT_EQ(img2.at(35), 3.0f);            // (5,5)
  EXPECT_FLOAT_EQ(img2.at(0), 0.0f);
}

TEST(TriggerTest, StampClampsToImage) {
  Tensor img = Tensor::zeros({1, 2, 2});
  stamp_trigger(img, {.size = 10, .intensity = 1.0f, .corner = 0});
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_FLOAT_EQ(img.at(i), 1.0f);
}

TEST(TriggerTest, RejectsBadInput) {
  Tensor flat({4});
  TriggerPattern t;
  EXPECT_THROW(stamp_trigger(flat, t), std::invalid_argument);
}

TEST(PoisonTest, RelabelsAndStampsEverything) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 5;
  spec.test_per_class = 2;
  spec.seed = 101;
  const auto tt = data::make_synthetic(spec);
  const TriggerPattern trigger{.size = 2, .intensity = 9.0f, .corner = 3};
  const auto poisoned = poison_dataset(tt.train, trigger, 1);
  ASSERT_EQ(poisoned.size(), tt.train.size());
  for (int i = 0; i < poisoned.size(); ++i) {
    EXPECT_EQ(poisoned.label(i), 1);
    const auto img = poisoned.image(i);
    EXPECT_FLOAT_EQ(img.at(7 * 8 + 7), 9.0f);  // bottom-right stamped
  }
  EXPECT_THROW(poison_dataset(tt.train, trigger, 9), std::invalid_argument);
}

TEST(BackdoorEndToEndTest, UnlearningRemovesTheBackdoor) {
  // A 4-client federation where client 0 is malicious: its entire local
  // dataset is stamped and relabeled to class 0. After training, stamped
  // images are classified as class 0 (attack succeeds); after client-level
  // unlearning of client 0, the attack success rate collapses.
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 40;
  spec.test_per_class = 10;
  spec.noise = 0.35f;
  spec.seed = 103;
  const auto tt = data::make_synthetic(spec);
  Rng prng(104);
  auto clients = data::materialize(tt.train, data::iid_partition(tt.train, 4, prng));
  const TriggerPattern trigger{.size = 3, .intensity = 4.0f, .corner = 3};
  const int target = 0;
  clients[0] = poison_dataset(clients[0], trigger, target);

  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 4;
  net.width = 12;
  net.depth = 1;
  auto mrng = std::make_shared<Rng>(105);
  fl::ModelFactory factory = [mrng, net] { return nn::make_convnet(net, *mrng); };

  core::QuickDropConfig cfg;
  cfg.fl_rounds = 20;
  cfg.local_steps = 6;
  cfg.batch_size = 16;
  cfg.train_lr = 0.1f;
  cfg.scale = 5;
  cfg.unlearn_lr = 0.04f;
  cfg.recover_lr = 0.05f;
  cfg.recovery_rounds = 3;
  // A burned-in backdoor can need more than one SGA round: verified
  // unlearning keeps ascending until the stamped synthetic set is erased.
  cfg.max_unlearn_rounds = 8;
  core::QuickDrop qd(factory, clients, cfg, 106);
  const auto trained = qd.train();

  auto model = factory();
  nn::load_state(*model, trained);
  const double asr_before = backdoor_success_rate(*model, tt.test, trigger, target);
  ASSERT_GT(asr_before, 0.5) << "poisoning must succeed for the test to be meaningful";

  const auto unlearned = qd.unlearn(trained, core::UnlearningRequest::for_client(0));
  nn::load_state(*model, unlearned);
  const double asr_after = backdoor_success_rate(*model, tt.test, trigger, target);
  EXPECT_LT(asr_after, 0.5 * asr_before);
  // The model must stay useful on clean data.
  EXPECT_GT(metrics::accuracy(*model, tt.test), 0.5);
}

}  // namespace
}  // namespace quickdrop::attack
