// Store engine contracts: durable round-trips, recovery-on-open semantics,
// page-level dedup, vacuum, and the corrupted-byte fuzz sweep (every header
// field and payload byte perturbed => typed error or clean fallback to an
// older committed state — never UB, never garbage data returned).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "store/store.h"
#include "util/rng.h"

namespace quickdrop::store {
namespace {

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + "qd_store_" + name;
  std::remove(path.c_str());
  std::remove((path + ".vacuum").c_str());
  return path;
}

/// Deterministic patterned bytes — every value in these tests is derived
/// from a seed, so corruption is always distinguishable from a stale value.
std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  Rng rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

std::map<Key, std::vector<std::uint8_t>> contents_of(Store& store) {
  std::map<Key, std::vector<std::uint8_t>> out;
  for (const auto& key : store.keys()) out[key] = store.get(key);
  return out;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  return bytes;
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  // Test fixture prep, not product persistence.
  // NOLINTNEXTLINE(qdlint-api-durable-io)
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(StoreTest, PutGetRoundtripsSingleAndMultiPageValues) {
  const auto path = temp_path("roundtrip.qds");
  Store store(path);
  const auto small = pattern(100, 1);
  const auto large = pattern(3 * kPagePayload + 777, 2);  // spans 4 pages
  store.put({10, 1, 0}, small);
  store.put({10, 1, 1}, large);
  store.commit();
  EXPECT_EQ(store.get({10, 1, 0}), small);
  EXPECT_EQ(store.get({10, 1, 1}), large);
  EXPECT_TRUE(store.contains({10, 1, 0}));
  EXPECT_FALSE(store.contains({10, 1, 2}));
  EXPECT_THROW((void)store.get({10, 1, 2}), StoreError);
}

TEST(StoreTest, EmptyValueRoundtrips) {
  const auto path = temp_path("empty.qds");
  {
    Store store(path);
    store.put({1, 1, 0}, {});
    store.commit();
  }
  Store reopened(path);
  EXPECT_TRUE(reopened.contains({1, 1, 0}));
  EXPECT_TRUE(reopened.get({1, 1, 0}).empty());
}

TEST(StoreTest, ReopenRecoversExactlyTheCommittedState) {
  const auto path = temp_path("reopen.qds");
  const auto a = pattern(2 * kPagePayload, 3);
  const auto b = pattern(512, 4);
  {
    Store store(path);
    store.put({7, 1, 1}, a);
    store.put({7, 2, 9}, b);
    store.commit();
    EXPECT_EQ(store.committed_seq(), 1u);
  }
  Store reopened(path);
  EXPECT_EQ(reopened.committed_seq(), 1u);
  EXPECT_EQ(reopened.get({7, 1, 1}), a);
  EXPECT_EQ(reopened.get({7, 2, 9}), b);
  EXPECT_EQ(reopened.keys().size(), 2u);
}

TEST(StoreTest, UncommittedChangesAreLostOnReopenCommittedOnesSurvive) {
  const auto path = temp_path("uncommitted.qds");
  const auto committed = pattern(600, 5);
  {
    Store store(path);
    store.put({1, 1, 0}, committed);
    store.commit();
    store.put({1, 1, 1}, pattern(600, 6));  // staged, never committed
    store.erase({1, 1, 0});                 // also staged, never committed
  }
  Store reopened(path);
  EXPECT_TRUE(reopened.contains({1, 1, 0}));
  EXPECT_EQ(reopened.get({1, 1, 0}), committed);
  EXPECT_FALSE(reopened.contains({1, 1, 1}));
}

TEST(StoreTest, EraseIsDurableAfterCommit) {
  const auto path = temp_path("erase.qds");
  {
    Store store(path);
    store.put({1, 1, 0}, pattern(64, 7));
    store.put({1, 1, 1}, pattern(64, 8));
    store.commit();
    EXPECT_TRUE(store.erase({1, 1, 0}));
    EXPECT_FALSE(store.erase({1, 1, 0}));  // already gone
    store.commit();
  }
  Store reopened(path);
  EXPECT_FALSE(reopened.contains({1, 1, 0}));
  EXPECT_TRUE(reopened.contains({1, 1, 1}));
}

TEST(StoreTest, LatestReturnsHighestCursorPerLayoutAndKind) {
  const auto path = temp_path("latest.qds");
  Store store(path);
  EXPECT_FALSE(store.latest(5, 1).has_value());
  store.put({5, 1, 3}, pattern(16, 9));
  store.put({5, 1, 12}, pattern(16, 10));
  store.put({5, 2, 99}, pattern(16, 11));
  store.put({6, 1, 500}, pattern(16, 12));
  const auto latest = store.latest(5, 1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->cursor, 12u);
  EXPECT_EQ(store.latest(5, 2)->cursor, 99u);
  EXPECT_EQ(store.latest(6, 1)->cursor, 500u);
  EXPECT_FALSE(store.latest(6, 2).has_value());
}

TEST(StoreTest, IdenticalValuesShareTheirPages) {
  const auto path = temp_path("dedup.qds");
  Store store(path);
  const auto value = pattern(4 * kPagePayload, 13);  // 4 full pages
  store.put({1, 1, 0}, value);
  store.put({1, 1, 1}, value);
  store.put({1, 1, 2}, value);
  store.commit();
  const auto stats = store.stats();
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.live_pages, 4u);  // one physical copy for all three records
  EXPECT_EQ(store.get({1, 1, 2}), value);
}

TEST(StoreTest, UnchangedRecordsDedupAcrossCommits) {
  const auto path = temp_path("dedup_rounds.qds");
  Store store(path);
  const auto value = pattern(6 * kPagePayload, 14);
  store.put({1, 1, 1}, value);
  store.commit();
  const auto pages_after_first = store.stats().file_pages;
  // "Round 2": the same state saved under the next cursor — as when a
  // training run checkpoints every round but nothing changed.
  store.put({1, 1, 2}, value);
  store.commit();
  const auto stats = store.stats();
  EXPECT_EQ(stats.live_pages, 6u);  // still one physical copy
  // The second commit added only index + commit pages, no data pages.
  EXPECT_LE(stats.file_pages - pages_after_first, 2u);
  // Dedup survives reopen (the digest map is rebuilt from live pages).
  Store reopened(path);
  reopened.put({1, 1, 3}, value);
  reopened.commit();
  EXPECT_EQ(reopened.stats().live_pages, 6u);
}

TEST(StoreTest, VacuumReclaimsDeadPagesAndPreservesContents) {
  const auto path = temp_path("vacuum.qds");
  Store store(path);
  for (int version = 0; version < 8; ++version) {
    store.put({1, 1, 0}, pattern(3 * kPagePayload, 100 + static_cast<std::uint64_t>(version)));
    store.commit();
  }
  store.put({1, 2, 5}, pattern(200, 200));
  store.commit();
  const auto before = contents_of(store);
  const auto stats = store.vacuum();
  EXPECT_LT(stats.pages_after, stats.pages_before);
  EXPECT_GT(stats.bytes_reclaimed(), 0);
  EXPECT_EQ(contents_of(store), before);
  // The vacuumed file is a normal store: reopen and keep writing.
  Store reopened(path);
  EXPECT_EQ(contents_of(reopened), before);
  reopened.put({1, 2, 6}, pattern(64, 201));
  reopened.commit();
  EXPECT_TRUE(reopened.contains({1, 2, 6}));
}

TEST(StoreTest, SniffDistinguishesStoreFilesFromBlobsAndMissingFiles) {
  const auto store_path = temp_path("sniff_store.qds");
  {
    Store store(store_path);
    store.put({1, 1, 0}, pattern(16, 15));
    store.commit();
  }
  EXPECT_TRUE(Store::sniff(store_path));
  const auto blob_path = temp_path("sniff_blob.bin");
  dump(blob_path, pattern(256, 16));
  EXPECT_FALSE(Store::sniff(blob_path));
  EXPECT_FALSE(Store::sniff(temp_path("sniff_missing.bin")));
}

TEST(StoreTest, TornTailIsDiscardedOnReopen) {
  const auto path = temp_path("torn_tail.qds");
  const auto value = pattern(1000, 17);
  {
    Store store(path);
    store.put({1, 1, 0}, value);
    store.commit();
  }
  // Simulate a crash mid-append: garbage half-page past the commit record.
  auto bytes = slurp(path);
  const auto committed_size = bytes.size();
  const auto garbage = pattern(kPageSize / 2, 18);
  bytes.insert(bytes.end(), garbage.begin(), garbage.end());
  dump(path, bytes);
  Store reopened(path);
  EXPECT_EQ(reopened.get({1, 1, 0}), value);
  EXPECT_EQ(slurp(path).size(), committed_size);  // tail discarded
}

TEST(StoreTest, GarbageFileOpensAsEmptyStore) {
  const auto path = temp_path("garbage.qds");
  dump(path, pattern(3 * kPageSize, 19));  // no valid page anywhere
  Store store(path);
  EXPECT_EQ(store.committed_seq(), 0u);
  EXPECT_TRUE(store.keys().empty());
  // And it is usable from scratch.
  store.put({1, 1, 0}, pattern(32, 20));
  store.commit();
  Store reopened(path);
  EXPECT_TRUE(reopened.contains({1, 1, 0}));
}

// ---------------------------------------------------------------------------
// Corrupted-byte fuzz: perturbing any byte of the committed file must yield
// either the full committed state (corruption in dead bytes), a clean older
// committed state (fallback), or an empty store — never a crash, never a
// read that returns corrupt data.
// ---------------------------------------------------------------------------

class CorruptionFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("fuzz.qds");
    {
      Store store(path_);
      store.put({1, 1, 0}, pattern(2 * kPagePayload + 100, 21));
      store.commit();
      state1_ = contents_of(store);
      store.put({1, 1, 1}, pattern(kPagePayload + 50, 22));
      store.put({1, 2, 0}, pattern(333, 23));
      store.commit();
      state2_ = contents_of(store);
    }
    pristine_ = slurp(path_);
  }

  /// Flips one byte at `offset`, reopens, and checks the recovery contract.
  void check_flip(std::size_t offset) {
    auto bytes = pristine_;
    bytes[offset] ^= 0x5A;
    dump(path_, bytes);
    Store store(path_);  // must not throw: corruption is recovered, not fatal
    const auto recovered = contents_of(store);  // get() verifies every record
    const bool ok = recovered == state2_ || recovered == state1_ || recovered.empty();
    ASSERT_TRUE(ok) << "offset " << offset << " recovered to an unknown state";
  }

  std::string path_;
  std::vector<std::uint8_t> pristine_;
  std::map<Key, std::vector<std::uint8_t>> state1_, state2_;
};

TEST_F(CorruptionFuzz, EveryByteOfTheLastCommitPageFallsBackCleanly) {
  // The last page is the seq-2 commit record: every header field (magic,
  // kind, id, length, reserved, CRC) and every payload byte perturbed.
  const std::size_t last_page = pristine_.size() - kPageSize;
  for (std::size_t off = 0; off < kPageSize; ++off) {
    check_flip(last_page + off);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CorruptionFuzz, EveryHeaderByteOfEveryPageIsDetected) {
  for (std::size_t page = 0; page * kPageSize < pristine_.size(); ++page) {
    for (std::size_t off = 0; off < kPageHeaderSize; ++off) {
      check_flip(page * kPageSize + off);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(CorruptionFuzz, SampledPayloadBytesAcrossTheWholeFileAreDetected) {
  // Every 97th byte covers every page's payload area at staggered offsets.
  for (std::size_t off = 0; off < pristine_.size(); off += 97) {
    check_flip(off);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CorruptionFuzz, TruncationAtEveryPageBoundaryAndMidPageRecovers) {
  for (std::size_t keep : {pristine_.size() - 1, pristine_.size() - kPageSize / 3,
                           pristine_.size() - kPageSize, 3 * std::size_t{kPageSize},
                           std::size_t{kPageSize}, std::size_t{17}, std::size_t{0}}) {
    if (keep > pristine_.size()) continue;
    auto bytes = pristine_;
    bytes.resize(keep);
    dump(path_, bytes);
    Store store(path_);
    const auto recovered = contents_of(store);
    const bool ok = recovered == state2_ || recovered == state1_ || recovered.empty();
    ASSERT_TRUE(ok) << "truncation to " << keep << " bytes";
  }
}

}  // namespace
}  // namespace quickdrop::store
