// Durable mid-request resume: a serve cycle whose per-round cursors stream
// into the crash-safe store is killed by an injected I/O fault, reopened from
// disk, and resumed — landing bitwise-identically to an uninterrupted run, at
// 1 and at 4 threads. Plus Fig. 4-style sequential unlearning where the whole
// deployment round-trips through store-backed checkpoints between requests.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/convnet.h"
#include "serve/durable.h"
#include "serve/executor.h"
#include "store/store.h"
#include "util/thread_pool.h"

namespace quickdrop::serve {
namespace {

struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

data::TrainTest make_mini_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 32;
  spec.test_per_class = 8;
  spec.noise = 0.35f;
  spec.seed = 33;
  return data::make_synthetic(spec);
}

struct MiniFederation {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;

  MiniFederation() : tt(make_mini_data()) {
    Rng prng(7);
    clients = data::materialize(tt.train, data::dirichlet_partition(tt.train, 4, 0.5f, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(19);
    factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };
  }

  static core::QuickDropConfig config() {
    core::QuickDropConfig cfg;
    cfg.fl_rounds = 5;
    cfg.local_steps = 3;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 10;
    cfg.unlearn_rounds = 2;
    cfg.recovery_rounds = 2;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    return cfg;
  }
};

void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b,
                                 const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << what << ": flat entry " << j;
  }
}

ServiceRequest class_request(int target) {
  ServiceRequest request;
  request.kind = RequestKind::kClass;
  request.target = target;
  return request;
}

std::string temp_store(const char* name) {
  const std::string path = ::testing::TempDir() + "qd_durable_" + name;
  std::remove(path.c_str());
  std::remove((path + ".vacuum").c_str());
  return path;
}

/// Trains the mini federation once and snapshots (global, stores) as a
/// checkpoint, so every run under comparison starts from the identical
/// deployment without retraining.
core::Checkpoint train_once() {
  set_num_threads(1);
  MiniFederation fed;
  core::QuickDrop qd(fed.factory, fed.clients, MiniFederation::config(), 99);
  const auto trained = qd.train();
  return core::make_checkpoint(trained, qd.stores());
}

/// A fresh coordinator (same seed, no training) with the deployment's stores
/// restored — how a restarted process reconstructs its serving state.
std::shared_ptr<core::QuickDrop> restored_coordinator(const core::Checkpoint& cp) {
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients,
                                              MiniFederation::config(), 99);
  qd->load_stores(core::restore_stores(cp));
  return qd;
}

/// Kills the store's file backend at the `at_sync`-th fsync: the per-round
/// commit inside durable_cursor_callback throws mid-cycle, exactly like a
/// disk dying under a live service.
store::IoFactory dying_factory(int at_sync) {
  return [at_sync](const std::string& p) -> std::unique_ptr<store::Io> {
    store::FaultSpec spec;
    spec.op = store::FaultSpec::Op::kSync;
    spec.mode = store::FaultSpec::Mode::kFailStop;
    spec.at_op = at_sync;
    return std::make_unique<store::FaultyIo>(std::make_unique<store::FileIo>(p), spec);
  };
}

TEST(DurableResumeTest, KilledMidCycleResumesBitwiseAtOneAndFourThreads) {
  ThreadGuard guard;
  const auto deployment = train_once();
  const auto hash = core::checkpoint_layout_hash(deployment);
  const auto request = class_request(1);

  // Reference: the uninterrupted cycle at 1 thread.
  set_num_threads(1);
  auto qd_full = restored_coordinator(deployment);
  const auto full = Executor(qd_full, CostModel{}).execute(deployment.global, {request});
  const int total_rounds = full.unlearn_stats.rounds + full.recovery_stats.rounds;
  ASSERT_EQ(total_rounds, 4);  // 2 unlearn + 2 recovery in the mini config

  // The "crashed" run: cursors stream into a store whose backend dies at the
  // 5th fsync — mid-commit of a later round's cursor record.
  const auto path = temp_store("killed.qds");
  {
    auto qd = restored_coordinator(deployment);
    store::Store store(path, dying_factory(5));
    bool died = false;
    try {
      Executor(qd, CostModel{}).execute(deployment.global, {request},
                                        durable_cursor_callback(store, *qd));
    } catch (const store::StoreError&) {
      died = true;
    }
    ASSERT_TRUE(died) << "the injected fault must kill the cycle mid-flight";
  }

  // Restart: reopen the store with a healthy backend and load the newest
  // committed cursor. At least one round must have committed before the kill,
  // and the cycle must genuinely be unfinished.
  store::Store reopened(path);
  const auto durable = load_durable_cursor(reopened, hash);
  ASSERT_TRUE(durable.has_value()) << "no committed cursor survived the crash";
  const int rounds_banked = durable->cursor.rounds_done +
                            (durable->cursor.phase == core::UnlearnCursor::kPhaseRecover
                                 ? full.unlearn_stats.rounds
                                 : 0);
  ASSERT_GT(rounds_banked, 0);
  ASSERT_LT(rounds_banked, total_rounds);

  // Resume at 1 thread and at 4 threads: both must land bitwise on the
  // uninterrupted result, executing only the remaining rounds.
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    auto qd = restored_coordinator(durable->checkpoint);
    const auto resumed = Executor(qd, CostModel{})
                             .execute(durable->checkpoint.global, {request}, {},
                                      &durable->cursor);
    expect_states_bitwise_equal(full.state, resumed.state,
                                threads == 1 ? "resume @1 thread" : "resume @4 threads");
    EXPECT_EQ(resumed.unlearn_stats.rounds + resumed.recovery_stats.rounds,
              total_rounds - rounds_banked)
        << "resume must execute exactly the remaining rounds";
    EXPECT_TRUE(qd->forgotten_classes().count(1));
  }

  // Once the request's result is durable the cursors are cleared, so a later
  // crash cannot resurrect the finished cycle.
  clear_durable_cursors(reopened, hash);
  EXPECT_FALSE(load_durable_cursor(reopened, hash).has_value());
  store::Store cleared(path);
  EXPECT_FALSE(load_durable_cursor(cleared, hash).has_value());
}

TEST(DurableResumeTest, SequentialUnlearningThroughStoreMatchesUninterrupted) {
  // Fig. 4's regime: requests served one after another, forgotten state
  // accumulating. The store-backed history saves a full checkpoint after each
  // completed request; a restart between requests 2 and 3 reloads the latest
  // checkpoint, replays the forgotten marks, and continues — the final model
  // must be bitwise what an unkilled sequential run produces.
  ThreadGuard guard;
  set_num_threads(1);
  const auto deployment = train_once();
  const auto hash = core::checkpoint_layout_hash(deployment);
  const std::vector<ServiceRequest> history = {class_request(1), class_request(2),
                                               class_request(3)};

  // Reference: all three requests on one long-lived coordinator.
  auto qd_full = restored_coordinator(deployment);
  Executor exec_full(qd_full, CostModel{});
  auto full_state = deployment.global;
  for (const auto& request : history) {
    full_state = exec_full.execute(full_state, {request}).state;
  }

  // Store-backed history: serve requests 1 and 2, checkpointing after each.
  const auto path = temp_store("sequential.qds");
  {
    auto qd = restored_coordinator(deployment);
    Executor executor(qd, CostModel{});
    store::Store store(path);
    auto state = deployment.global;
    std::uint64_t live_after_first = 0;
    for (std::uint64_t served = 0; served < 2; ++served) {
      state = executor
                  .execute(state, {history[served]}, durable_cursor_callback(store, *qd))
                  .state;
      core::save_checkpoint(core::make_checkpoint(state, qd->stores()), store, served + 1);
      clear_durable_cursors(store, hash);
      if (served == 0) live_after_first = store.stats().live_pages;
    }
    // Unlearning rewrites the model, not the synthetic data, so the second
    // checkpoint shares its synthetic-store pages with the first: two live
    // checkpoints cost less than two full copies.
    const auto stats = store.stats();
    EXPECT_EQ(stats.records, 2u);
    EXPECT_LT(stats.live_pages, 2 * live_after_first);
  }  // process "dies" here, between requests 2 and 3

  // Restart: latest store checkpoint + replayed forgotten marks, then the
  // remaining request.
  store::Store store(path);
  ASSERT_FALSE(load_durable_cursor(store, hash).has_value());  // no cycle in flight
  const auto round = core::latest_checkpoint_round(store, hash);
  ASSERT_TRUE(round.has_value());
  ASSERT_EQ(*round, 2u);
  const auto cp = core::load_checkpoint(store, hash, *round);
  auto qd = restored_coordinator(cp);
  for (std::uint64_t served = 0; served < *round; ++served) {
    qd->mark_forgotten(core::UnlearningRequest::for_class(history[served].target));
  }
  const auto resumed_state =
      Executor(qd, CostModel{}).execute(cp.global, {history[2]}).state;

  expect_states_bitwise_equal(full_state, resumed_state, "sequential history through store");
  EXPECT_EQ(qd->forgotten_classes(), qd_full->forgotten_classes());
}

TEST(DurableResumeTest, CursorRecordsShardTopologyAndRejectsASwitch) {
  // The v2 cursor record carries the shard-tree topology the request was
  // folding under; a restarted service configured differently must refuse to
  // resume rather than silently continue under re-partitioned accounting.
  ThreadGuard guard;
  set_num_threads(1);
  const auto deployment = train_once();
  const auto hash = core::checkpoint_layout_hash(deployment);
  const auto path = temp_store("topology.qds");

  auto cfg = MiniFederation::config();
  cfg.aggregation = {.shards = 4, .fanout = 4};
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  qd->load_stores(core::restore_stores(deployment));
  store::Store store(path);
  Executor(qd, CostModel{})
      .execute(deployment.global, {class_request(2)}, durable_cursor_callback(store, *qd));

  const auto durable = load_durable_cursor(store, hash);
  ASSERT_TRUE(durable.has_value());
  EXPECT_EQ(durable->cursor.shards, 4);
  EXPECT_EQ(durable->cursor.shard_fanout, 4);

  // Same cursor, a coordinator back on the default 1-shard topology: reject.
  auto qd_other = restored_coordinator(durable->checkpoint);
  EXPECT_THROW(Executor(qd_other, CostModel{})
                   .execute(durable->checkpoint.global, {class_request(2)}, {},
                            &durable->cursor),
               std::invalid_argument);

  // Matching topology resumes fine.
  auto qd_same = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  qd_same->load_stores(core::restore_stores(durable->checkpoint));
  EXPECT_NO_THROW(Executor(qd_same, CostModel{})
                      .execute(durable->checkpoint.global, {class_request(2)}, {},
                               &durable->cursor));
}

}  // namespace
}  // namespace quickdrop::serve
