// Checkpoint persistence through the crash-safe store: store-backed
// round-trips, round-over-round dedup, latest-record lookup, per-client
// records, format sniffing against legacy blob checkpoints, and the atomic
// plain-file save path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "nn/convnet.h"
#include "store/store.h"

namespace quickdrop::core {
namespace {

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + "qd_cpstore_" + name;
  std::remove(path.c_str());
  return path;
}

struct Fixture {
  data::TrainTest tt;
  std::vector<SyntheticStore> stores;
  nn::ModelState global;

  Fixture() : tt(make_data()) {
    Rng rng(3);
    stores.emplace_back(tt.train, 10, rng);
    std::vector<int> rows;
    for (int i = 0; i < tt.train.size(); ++i) {
      if (tt.train.label(i) != 0) rows.push_back(i);
    }
    stores.emplace_back(tt.train.subset(rows), 10, rng);
    nn::ConvNetConfig cfg;
    cfg.in_channels = 1;
    cfg.image_size = 8;
    cfg.width = 4;
    cfg.depth = 1;
    cfg.num_classes = 3;
    Rng mrng(5);
    auto model = nn::make_convnet(cfg, mrng);
    global = nn::state_of(*model);
  }

  static data::TrainTest make_data() {
    data::SyntheticSpec spec;
    spec.num_classes = 3;
    spec.channels = 1;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 2;
    spec.seed = 61;
    return data::make_synthetic(spec);
  }
};

/// Bitwise checkpoint equality through the canonical serialization.
void expect_checkpoints_identical(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(serialize_checkpoint(a), serialize_checkpoint(b));
}

TEST(CheckpointStoreTest, StoreRoundTripIsBitwiseIdentical) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  cp.metadata["dataset"] = "mini";
  const auto hash = checkpoint_layout_hash(cp);
  ASSERT_NE(hash, 0u);
  const auto path = temp_path("roundtrip.qds");
  store::Store store(path);
  save_checkpoint(cp, store, 7);
  expect_checkpoints_identical(cp, load_checkpoint(store, hash, 7));
  // Survives reopen (i.e. it was committed, not merely staged).
  store::Store reopened(path);
  expect_checkpoints_identical(cp, load_checkpoint(reopened, hash, 7));
}

TEST(CheckpointStoreTest, RoundOverRoundSavesDedupUnchangedPages) {
  Fixture f;
  const auto cp = make_checkpoint(f.global, f.stores);
  const auto path = temp_path("dedup.qds");
  store::Store store(path);
  save_checkpoint(cp, store, 1);
  const auto first = store.stats();
  for (std::uint64_t round = 2; round <= 6; ++round) save_checkpoint(cp, store, round);
  const auto after = store.stats();
  EXPECT_EQ(after.records, 6u);
  // Identical payloads: six records share one physical copy of the data.
  EXPECT_EQ(after.live_pages, first.live_pages);
  // Each extra round appends only its index snapshot + commit record — zero
  // new data pages.
  EXPECT_LE(after.file_pages - first.file_pages, 5 * 2u);
}

TEST(CheckpointStoreTest, LatestRoundAndLatestCheckpointFindTheNewest) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  const auto hash = checkpoint_layout_hash(cp);
  const auto path = temp_path("latest.qds");
  store::Store store(path);
  EXPECT_FALSE(latest_checkpoint_round(store, hash).has_value());
  EXPECT_THROW((void)load_latest_checkpoint(store), store::StoreError);
  save_checkpoint(cp, store, 3);
  cp.metadata["round"] = "12";
  save_checkpoint(cp, store, 12);
  const auto round = latest_checkpoint_round(store, hash);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, 12u);
  const auto latest = load_latest_checkpoint(store);
  EXPECT_EQ(latest.metadata.at("round"), "12");
  expect_checkpoints_identical(cp, latest);
}

TEST(CheckpointStoreTest, ClientStoreRecordsRoundTripIndividually) {
  Fixture f;
  const auto cp = make_checkpoint(f.global, f.stores);
  const auto hash = checkpoint_layout_hash(cp);
  ASSERT_EQ(cp.clients.size(), 2u);
  const auto path = temp_path("clients.qds");
  store::Store store(path);
  for (std::size_t c = 0; c < cp.clients.size(); ++c) {
    save_client_store(store, hash, c, cp.clients[c]);
  }
  store.commit();  // save_client_store stages; the batch commits once

  store::Store reopened(path);
  for (std::size_t c = 0; c < cp.clients.size(); ++c) {
    const auto back = load_client_store(reopened, hash, c);
    const auto& orig = cp.clients[c];
    ASSERT_EQ(back.num_classes, orig.num_classes) << "client " << c;
    ASSERT_EQ(back.image_shape, orig.image_shape) << "client " << c;
    ASSERT_EQ(back.synthetic.size(), orig.synthetic.size());
    for (std::size_t k = 0; k < orig.synthetic.size(); ++k) {
      ASSERT_EQ(back.synthetic[k].shape(), orig.synthetic[k].shape());
      for (std::int64_t i = 0; i < orig.synthetic[k].numel(); ++i) {
        ASSERT_EQ(back.synthetic[k].at(i), orig.synthetic[k].at(i));
      }
      ASSERT_EQ(back.augmentation[k].shape(), orig.augmentation[k].shape());
      for (std::int64_t i = 0; i < orig.augmentation[k].numel(); ++i) {
        ASSERT_EQ(back.augmentation[k].at(i), orig.augmentation[k].at(i));
      }
    }
  }
  EXPECT_THROW((void)load_client_store(reopened, hash, 99), store::StoreError);
}

TEST(CheckpointStoreTest, LoadCheckpointSniffsStoreFilesAndLegacyBlobs) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  cp.metadata["origin"] = "store";
  // A store file at `path` loads its latest committed record...
  const auto store_path = temp_path("sniff.qds");
  {
    store::Store store(store_path);
    save_checkpoint(cp, store, 4);
  }
  expect_checkpoints_identical(cp, load_checkpoint(store_path));
  // ...and a legacy single-blob file still parses through the same entry
  // point (the atomic plain-file writer produces the legacy format).
  cp.metadata["origin"] = "blob";
  const auto blob_path = temp_path("sniff.blob");
  save_checkpoint(cp, blob_path);
  EXPECT_FALSE(store::Store::sniff(blob_path));
  expect_checkpoints_identical(cp, load_checkpoint(blob_path));
}

TEST(CheckpointStoreTest, AtomicFileSaveReplacesExistingCheckpointCleanly) {
  Fixture f;
  auto cp = make_checkpoint(f.global, f.stores);
  const auto path = temp_path("atomic.blob");
  cp.metadata["version"] = "one";
  save_checkpoint(cp, path);
  cp.metadata["version"] = "two";
  save_checkpoint(cp, path);  // tmp + rename over the existing file
  EXPECT_EQ(load_checkpoint(path).metadata.at("version"), "two");
  // No stray temp files left beside the checkpoint.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

}  // namespace
}  // namespace quickdrop::core
