// Kill-point recovery harness: sweeps a fault over EVERY write and fsync of a
// canonical store workload (three two-phase commits + a vacuum) and asserts
// the store reopens to exactly a committed state — bitwise — no matter where
// the "process" died or which bytes were torn or flipped on the way down.
//
// The sweep is built in two passes:
//   1. Dry run through CountingIo to learn how many kill points each file
//      backend has (main store, vacuum scratch, post-vacuum reopen) and to
//      capture the expected contents after each acknowledged commit.
//   2. One trial per (backend instance, op kind, op index, fault mode):
//      run the workload against a FaultyIo that dies at that exact point,
//      reopen with a clean backend, and check the recovered contents.
//
// Recovery contract for dying faults: with `a` acknowledged commits, the
// recovered state is snapshots[a] or snapshots[a+1] — the in-flight commit is
// allowed to survive when every one of its bytes reached the file before the
// injected death (e.g. a fault on the final fsync), but nothing in between
// and nothing corrupt. Silent bit flips (no death) may additionally roll back
// further: a flipped live data page invalidates every later commit that
// references it, and full-verification recovery walks back past all of them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "store/store.h"
#include "util/rng.h"

namespace quickdrop::store {
namespace {

using Contents = std::map<Key, std::vector<std::uint8_t>>;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  Rng rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

Contents contents_of(Store& store) {
  Contents out;
  for (const auto& key : store.keys()) out[key] = store.get(key);
  return out;
}

struct WorkloadResult {
  int acked = 0;        ///< commits whose commit() returned
  bool vacuumed = false;
  bool died = false;    ///< a StoreError escaped the workload
};

/// The canonical workload: three commits exercising multi-page values,
/// page-level dedup, erase, and an empty value, then a vacuum. Deterministic,
/// so the N-th write of a trial is the N-th write of the dry run.
WorkloadResult run_workload(const std::string& path, const IoFactory& factory,
                            const std::function<void(Store&, int)>& after_commit = {}) {
  WorkloadResult res;
  try {
    Store store(path, factory);
    store.put({1, 1, 0}, pattern(2 * kPagePayload + 500, 1));
    store.put({1, 2, 0}, pattern(300, 2));
    store.commit();
    ++res.acked;
    if (after_commit) after_commit(store, res.acked);
    store.put({1, 1, 1}, pattern(2 * kPagePayload + 500, 1));  // dedups with {1,1,0}
    store.erase({1, 2, 0});
    store.commit();
    ++res.acked;
    if (after_commit) after_commit(store, res.acked);
    store.put({1, 1, 2}, pattern(kPagePayload + 123, 3));
    store.put({2, 1, 0}, {});
    store.commit();
    ++res.acked;
    if (after_commit) after_commit(store, res.acked);
    store.vacuum();
    res.vacuumed = true;
  } catch (const StoreError&) {
    res.died = true;
  }
  return res;
}

std::string trial_path() {
  const std::string path = ::testing::TempDir() + "qd_crash_sweep.qds";
  std::remove(path.c_str());
  std::remove((path + ".vacuum").c_str());
  return path;
}

/// Wraps the `target`-th backend the store asks for in a FaultyIo; every
/// other backend is plain. Instance 0 is the main store file, 1 the vacuum
/// scratch store, 2 the post-vacuum reopen.
IoFactory faulty_factory(int target, FaultSpec spec) {
  auto created = std::make_shared<int>(0);
  return [created, target, spec](const std::string& p) -> std::unique_ptr<Io> {
    std::unique_ptr<Io> io = std::make_unique<FileIo>(p);
    if ((*created)++ == target) io = std::make_unique<FaultyIo>(std::move(io), spec);
    return io;
  };
}

std::string describe(int instance, const FaultSpec& spec) {
  std::string out = "instance " + std::to_string(instance);
  out += spec.op == FaultSpec::Op::kWrite ? " write #" : " sync #";
  out += std::to_string(spec.at_op);
  switch (spec.mode) {
    case FaultSpec::Mode::kFailStop: out += " fail-stop"; break;
    case FaultSpec::Mode::kTorn:
      out += " torn(" + std::to_string(spec.torn_bytes) + ")";
      break;
    case FaultSpec::Mode::kBitFlip:
      out += " bit-flip(" + std::to_string(spec.flip_bit) + ")";
      break;
    case FaultSpec::Mode::kSilentFlip:
      out += " silent-flip(" + std::to_string(spec.flip_bit) + ")";
      break;
  }
  return out;
}

class CrashSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = trial_path();
    snapshots_.push_back({});  // snapshots_[0]: before any commit
    auto counting = [this](const std::string& p) -> std::unique_ptr<Io> {
      tallies_.emplace_back(0, 0);
      auto& tally = tallies_.back();  // deque: stable across later pushes
      return std::make_unique<CountingIo>(std::make_unique<FileIo>(p),
                                          &tally.first, &tally.second);
    };
    const auto dry = run_workload(path_, counting, [this](Store& s, int) {
      snapshots_.push_back(contents_of(s));
    });
    ASSERT_FALSE(dry.died);
    ASSERT_EQ(dry.acked, 3);
    ASSERT_TRUE(dry.vacuumed);
    ASSERT_EQ(snapshots_.size(), 4u);
    ASSERT_GE(tallies_.size(), 2u);  // main store + vacuum scratch at least
    // Guard against the sweep silently shrinking: the workload must expose a
    // healthy number of kill points on the main store file.
    ASSERT_GE(tallies_[0].first, 10) << "main store saw suspiciously few writes";
    ASSERT_GE(tallies_[0].second, 3) << "main store saw suspiciously few fsyncs";
  }

  /// Runs one trial and checks the recovery contract. `dying` selects the
  /// strict {snap[a], snap[a+1]} contract; silent faults get the relaxed
  /// any-committed-state contract.
  void run_trial(int instance, const FaultSpec& spec, bool dying) {
    std::remove(path_.c_str());
    std::remove((path_ + ".vacuum").c_str());
    const auto res = run_workload(path_, faulty_factory(instance, spec));
    Store reopened(path_);  // recovery must never throw
    const auto recovered = contents_of(reopened);  // and every get() verifies
    bool ok = false;
    if (dying) {
      const auto a = static_cast<std::size_t>(res.acked);
      ok = recovered == snapshots_[a] ||
           (a + 1 < snapshots_.size() && recovered == snapshots_[a + 1]);
    } else {
      for (const auto& snap : snapshots_) ok = ok || recovered == snap;
    }
    ASSERT_TRUE(ok) << describe(instance, spec) << ": acked " << res.acked
                    << " commits, recovered " << recovered.size()
                    << " records matching no allowed snapshot";
    // The recovered store must be fully usable, not merely readable.
    const auto probe = pattern(64, 4242);
    reopened.put({99, 9, 1}, probe);
    reopened.commit();
    ASSERT_EQ(reopened.get({99, 9, 1}), probe) << describe(instance, spec);
  }

  std::string path_;
  std::deque<std::pair<int, int>> tallies_;  // per backend: (writes, syncs)
  std::vector<Contents> snapshots_;
};

TEST_F(CrashSweep, EveryWriteKillPointRecoversToACommittedState) {
  for (std::size_t instance = 0; instance < tallies_.size(); ++instance) {
    for (int at = 1; at <= tallies_[instance].first; ++at) {
      FaultSpec spec;
      spec.op = FaultSpec::Op::kWrite;
      spec.at_op = at;
      spec.mode = FaultSpec::Mode::kFailStop;
      run_trial(static_cast<int>(instance), spec, /*dying=*/true);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(CrashSweep, EverySyncKillPointRecoversToACommittedState) {
  for (std::size_t instance = 0; instance < tallies_.size(); ++instance) {
    for (int at = 1; at <= tallies_[instance].second; ++at) {
      FaultSpec spec;
      spec.op = FaultSpec::Op::kSync;
      spec.at_op = at;
      spec.mode = FaultSpec::Mode::kFailStop;
      run_trial(static_cast<int>(instance), spec, /*dying=*/true);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(CrashSweep, TornWritesAtEveryKillPointRecover) {
  // 0 bytes (nothing lands), 1 byte (header clobbered), 2049 bytes (half a
  // page: header valid, payload truncated — the nastiest tear).
  for (const std::uint64_t torn : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2049}}) {
    for (std::size_t instance = 0; instance < tallies_.size(); ++instance) {
      for (int at = 1; at <= tallies_[instance].first; ++at) {
        FaultSpec spec;
        spec.op = FaultSpec::Op::kWrite;
        spec.at_op = at;
        spec.mode = FaultSpec::Mode::kTorn;
        spec.torn_bytes = torn;
        run_trial(static_cast<int>(instance), spec, /*dying=*/true);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_F(CrashSweep, BitFlippedWritesAtEveryKillPointRecover) {
  // Bit 7 lands in the page magic; 12345 deep inside the payload area.
  for (const std::uint64_t bit : {std::uint64_t{7}, std::uint64_t{12345}}) {
    for (std::size_t instance = 0; instance < tallies_.size(); ++instance) {
      for (int at = 1; at <= tallies_[instance].first; ++at) {
        FaultSpec spec;
        spec.op = FaultSpec::Op::kWrite;
        spec.at_op = at;
        spec.mode = FaultSpec::Mode::kBitFlip;
        spec.flip_bit = bit;
        run_trial(static_cast<int>(instance), spec, /*dying=*/true);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_F(CrashSweep, SilentBitFlipsNeverCrashAndRecoverToSomeCommittedState) {
  // The process does NOT die: the flipped write lands and execution carries
  // on, so later commits may stack on top of a corrupt page. Recovery must
  // still land on some committed state (possibly empty, when the flip hit a
  // page every commit's records depend on) and the store must stay usable.
  for (std::size_t instance = 0; instance < tallies_.size(); ++instance) {
    for (int at = 1; at <= tallies_[instance].first; ++at) {
      FaultSpec spec;
      spec.op = FaultSpec::Op::kWrite;
      spec.at_op = at;
      spec.mode = FaultSpec::Mode::kSilentFlip;
      spec.flip_bit = 12345;
      run_trial(static_cast<int>(instance), spec, /*dying=*/false);
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace quickdrop::store
