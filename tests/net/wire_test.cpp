// Wire-protocol codec contracts: frame round trips over buffers and Io
// streams, payload codecs (request/ack/update, raw and quantized), and the
// fuzz-style negative suite — every header byte corrupted, truncation at
// every boundary, oversized lengths, layout-hash mismatch, trailing bytes —
// mirroring the mutated-stream tests in tests/nn/flat_state_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/io.h"
#include "net/wire.h"
#include "nn/state.h"

namespace quickdrop::net {
namespace {

using nn::ModelState;
using nn::StateLayout;

constexpr std::uint64_t kHash = 0x1122334455667788ULL;

ModelState make_state() {
  auto layout = StateLayout::of_shapes({{3, 2}, {3}, {4, 3}, {4}});
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.01f * static_cast<float>((i * 2654435761ULL) % 509) - 2.5f;
  }
  return {std::move(layout), std::move(values)};
}

serve::ServiceRequest sample_request() {
  serve::ServiceRequest request;
  request.kind = serve::RequestKind::kSample;
  request.target = 3;
  request.rows = {1, 4, 9};
  request.arrival_seconds = 12.625;  // exactly representable
  request.priority = 2;
  return request;
}

/// Decodes and reports the typed code, or kNone sentinel via has_value.
NetErrorCode decode_error(const std::vector<std::uint8_t>& bytes,
                          std::uint64_t expected_hash = kHash) {
  try {
    decode_frame(bytes, expected_hash);
  } catch (const NetError& e) {
    return e.code;
  }
  ADD_FAILURE() << "decode_frame accepted a corrupted buffer of " << bytes.size() << " bytes";
  return NetErrorCode::kIoFailure;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(WireFrame, RoundTripsEveryFrameType) {
  const ModelState state = make_state();
  const std::vector<Frame> frames = {
      make_request_frame({sample_request(), "acme"}, kHash),
      make_end_frame(kHash),
      make_update_frame(state, fl::Codec::kNone, kHash),
      make_ack_frame({.accepted = true, .id = 7, .reason = {}, .message = ""}, kHash),
      make_report_frame("{\"cycles\": 3}", kHash),
  };
  for (const auto& frame : frames) {
    const auto bytes = encode_frame(frame);
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
    const Frame back = decode_frame(bytes, kHash);
    EXPECT_EQ(back.type, frame.type);
    EXPECT_EQ(back.layout_hash, kHash);
    EXPECT_EQ(back.payload, frame.payload);
    // A zero expected hash disables the gate.
    EXPECT_NO_THROW(decode_frame(bytes, 0));
  }
}

TEST(WireFrame, RequestPayloadRoundTripsExactly) {
  const WireRequest wire{sample_request(), "tenant-a"};
  const auto back = decode_request_payload(encode_request_payload(wire));
  EXPECT_EQ(back.tenant, "tenant-a");
  EXPECT_EQ(back.request.kind, wire.request.kind);
  EXPECT_EQ(back.request.target, wire.request.target);
  EXPECT_EQ(back.request.rows, wire.request.rows);
  EXPECT_EQ(back.request.arrival_seconds, wire.request.arrival_seconds);
  EXPECT_EQ(back.request.priority, wire.request.priority);
}

TEST(WireFrame, AckPayloadRoundTripsBothOutcomes) {
  const WireAck ok{.accepted = true, .id = 42, .reason = {}, .message = ""};
  const auto ok_back = decode_ack_payload(encode_ack_payload(ok));
  EXPECT_TRUE(ok_back.accepted);
  EXPECT_EQ(ok_back.id, 42);

  const WireAck rejected{.accepted = false,
                         .id = -1,
                         .reason = serve::RejectReason::kDuplicatePending,
                         .message = "already queued"};
  const auto rej_back = decode_ack_payload(encode_ack_payload(rejected));
  EXPECT_FALSE(rej_back.accepted);
  EXPECT_EQ(rej_back.reason, serve::RejectReason::kDuplicatePending);
  EXPECT_EQ(rej_back.message, "already queued");
}

TEST(WireFrame, UpdatePayloadRawIsBitwiseAndQuantizedMatchesFlCodec) {
  const ModelState state = make_state();
  const auto raw = decode_update_payload(encode_update_payload(state, fl::Codec::kNone),
                                         state.layout());
  ASSERT_EQ(raw.numel(), state.numel());
  for (std::int64_t i = 0; i < state.numel(); ++i) {
    ASSERT_EQ(raw.at(i), state.at(i)) << "flat index " << i;
  }
  // The quantized path must land exactly where fl::decode_delta would: the
  // wire adds framing, never arithmetic.
  for (const auto codec : {fl::Codec::kInt8, fl::Codec::kBf16}) {
    const auto via_wire =
        decode_update_payload(encode_update_payload(state, codec), state.layout());
    const auto via_fl = fl::decode_delta(fl::encode_delta(state, codec), state.layout());
    ASSERT_EQ(via_wire.numel(), via_fl.numel());
    for (std::int64_t i = 0; i < state.numel(); ++i) {
      ASSERT_EQ(via_wire.at(i), via_fl.at(i)) << "codec " << static_cast<int>(codec) << " @" << i;
    }
  }
}

TEST(WireFrame, StreamRoundTripOverLoopback) {
  auto pair = make_loopback();
  write_frame(*pair.client, make_request_frame({sample_request(), "t"}, kHash));
  write_frame(*pair.client, make_end_frame(kHash));
  pair.client->finish_write();

  const auto first = read_frame(*pair.server, kHash);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, FrameType::kUnlearnRequest);
  const auto second = read_frame(*pair.server, kHash);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, FrameType::kEndOfTrace);
  // Clean end-of-stream at the frame boundary.
  EXPECT_FALSE(read_frame(*pair.server, kHash).has_value());
}

// ---------------------------------------------------------------------------
// Fuzz-style negatives: header corruption
// ---------------------------------------------------------------------------

TEST(WireFuzz, EveryCorruptedHeaderByteIsRejected) {
  const auto good = encode_frame(make_request_frame({sample_request(), "t"}, kHash));
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
      auto bytes = good;
      bytes[i] ^= flip;
      try {
        decode_frame(bytes, kHash);
        ADD_FAILURE() << "accepted header byte " << i << " ^ " << int(flip);
      } catch (const NetError&) {
        // Any typed code is acceptable; which one depends on the byte: magic
        // bytes -> kBadMagic, version -> kBadVersion, type -> kUnknownType or
        // kCrcMismatch, hash -> kLayoutMismatch, length -> size errors.
      }
    }
  }
}

TEST(WireFuzz, CorruptionErrorsAreTyped) {
  const auto good = encode_frame(make_end_frame(kHash));
  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode_error(bad_magic), NetErrorCode::kBadMagic);

  auto bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_EQ(decode_error(bad_version), NetErrorCode::kBadVersion);

  auto bad_type = good;
  bad_type[6] = 0x7F;  // outside the FrameType set
  EXPECT_EQ(decode_error(bad_type), NetErrorCode::kUnknownType);

  // A flipped hash *byte* is corruption and fails the CRC; a layout mismatch
  // proper is a well-formed frame built against a different deployment.
  auto bad_hash = good;
  bad_hash[8] ^= 0x01;
  EXPECT_EQ(decode_error(bad_hash), NetErrorCode::kCrcMismatch);
  const auto foreign = encode_frame(make_end_frame(kHash ^ 1));
  EXPECT_EQ(decode_error(foreign), NetErrorCode::kLayoutMismatch);
  EXPECT_NO_THROW(decode_frame(foreign, 0));
}

TEST(WireFuzz, CorruptedPayloadAndTrailerFailCrc) {
  const auto good = encode_frame(make_report_frame("{\"ok\": true}", kHash));
  for (std::size_t i = kFrameHeaderBytes; i < good.size(); ++i) {
    auto bytes = good;
    bytes[i] ^= 0x20;
    EXPECT_EQ(decode_error(bytes), NetErrorCode::kCrcMismatch) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Fuzz-style negatives: truncation, lengths, trailing bytes
// ---------------------------------------------------------------------------

TEST(WireFuzz, TruncationAtEveryBoundaryIsRejected) {
  const auto good = encode_frame(make_request_frame({sample_request(), "tenant"}, kHash));
  for (std::size_t len = 0; len < good.size(); ++len) {
    const std::vector<std::uint8_t> cut(good.begin(), good.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_error(cut), NetErrorCode::kTruncated) << "prefix " << len;
  }
}

TEST(WireFuzz, TrailingBytesAreRejected) {
  auto bytes = encode_frame(make_end_frame(kHash));
  bytes.push_back(0x00);
  EXPECT_EQ(decode_error(bytes), NetErrorCode::kTrailingBytes);
}

TEST(WireFuzz, OversizedDeclaredLengthIsRejectedBeforeAllocation) {
  auto bytes = encode_frame(make_end_frame(kHash));
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  EXPECT_EQ(decode_error(bytes), NetErrorCode::kOversized);
}

TEST(WireFuzz, StreamTornMidFrameThrowsTruncated) {
  const auto good = encode_frame(make_request_frame({sample_request(), "t"}, kHash));
  for (const std::size_t cut : {std::size_t{1}, kFrameHeaderBytes - 1, kFrameHeaderBytes,
                                good.size() - 1}) {
    auto pair = make_loopback();
    pair.client->write_all(std::span(good.data(), cut));
    pair.client->finish_write();
    try {
      read_frame(*pair.server, kHash);
      ADD_FAILURE() << "read_frame accepted a stream torn at byte " << cut;
    } catch (const NetError& e) {
      EXPECT_EQ(e.code, NetErrorCode::kTruncated) << "cut " << cut;
    }
  }
}

TEST(WireFuzz, RequestPayloadNegativesAreTyped) {
  const auto good = encode_request_payload({sample_request(), "tenant"});
  // Truncation at every boundary inside the payload codec.
  for (std::size_t len = 0; len < good.size(); ++len) {
    const std::vector<std::uint8_t> cut(good.begin(), good.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_request_payload(cut), NetError) << "prefix " << len;
  }
  // Trailing garbage after a complete request.
  auto padded = good;
  padded.push_back(0x01);
  EXPECT_THROW(decode_request_payload(padded), NetError);
}

TEST(WireFuzz, UpdatePayloadRejectsUnknownCodecAndInnerCorruption) {
  const ModelState state = make_state();
  auto payload = encode_update_payload(state, fl::Codec::kNone);
  auto unknown = payload;
  unknown[0] = 0x66;
  EXPECT_THROW(decode_update_payload(unknown, state.layout()), NetError);

  // Inner v2-state corruption surfaces as a typed wire error, not StateError.
  auto corrupt = payload;
  corrupt[corrupt.size() / 2] ^= 0xFF;
  try {
    decode_update_payload(corrupt, state.layout());
    ADD_FAILURE() << "accepted corrupted inner state";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code, NetErrorCode::kBadPayload);
  }

  // Wrong receiver layout: the gate fires even though the bytes are intact.
  const auto other = StateLayout::of_shapes({{5, 5}});
  EXPECT_THROW(decode_update_payload(payload, other), NetError);
}

}  // namespace
}  // namespace quickdrop::net
