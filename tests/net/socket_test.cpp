// Real-socket coverage for the POSIX transport: ephemeral-port listeners,
// frame round trips over TCP, a full replay session across a real
// connection, and the poll-based HTTP accept loop. Each test runs server
// and client as two chunks on a private two-executor pool; environments
// that forbid binding 127.0.0.1 skip instead of failing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/replay.h"
#include "net/socket.h"
#include "net/wire.h"
#include "test_federation.h"
#include "util/thread_pool.h"

namespace quickdrop::net {
namespace {

using testing::expect_states_bitwise_equal;
using testing::MiniFederation;
using testing::ThreadGuard;

constexpr std::uint64_t kHash = 0xABCD1234ULL;

/// Binds an ephemeral listener, or nullptr when the sandbox forbids it.
std::unique_ptr<TcpListener> try_listen() {
  try {
    return std::make_unique<TcpListener>(0);
  } catch (const NetError&) {
    return nullptr;
  }
}

TEST(Socket, ListenerReportsEphemeralPort) {
  const auto listener = try_listen();
  if (!listener) GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";
  EXPECT_GT(listener->port(), 0);
}

TEST(Socket, FrameRoundTripOverTcp) {
  auto listener = try_listen();
  if (!listener) GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";

  serve::ServiceRequest request;
  request.kind = serve::RequestKind::kClass;
  request.target = 2;
  request.arrival_seconds = 1.5;

  Frame echoed;
  ThreadPool pool(2);
  pool.run_chunks(2, [&](int chunk) {
    if (chunk == 0) {
      auto conn = listener->accept_conn();
      const auto frame = read_frame(*conn, kHash);
      ASSERT_TRUE(frame.has_value());
      write_frame(*conn, *frame);  // echo back
      conn->finish_write();
      EXPECT_FALSE(read_frame(*conn, kHash).has_value());
    } else {
      auto conn = tcp_connect("127.0.0.1", listener->port());
      write_frame(*conn, make_request_frame({request, "tcp-tenant"}, kHash));
      conn->finish_write();
      const auto back = read_frame(*conn, kHash);
      ASSERT_TRUE(back.has_value());
      echoed = *back;
    }
  });

  EXPECT_EQ(echoed.type, FrameType::kUnlearnRequest);
  const auto wire = decode_request_payload(echoed.payload);
  EXPECT_EQ(wire.tenant, "tcp-tenant");
  EXPECT_EQ(wire.request.target, 2);
  EXPECT_EQ(wire.request.arrival_seconds, 1.5);
}

TEST(Socket, ReplaySessionOverTcpMatchesLoopback) {
  ThreadGuard guard;
  auto listener = try_listen();
  if (!listener) GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";

  set_num_threads(1);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients,
                                              MiniFederation::config(), 99);
  const auto trained = qd->train();
  const std::uint64_t hash = qd->state_layout()->hash();

  serve::ServiceRequest request;
  request.kind = serve::RequestKind::kClass;
  request.target = 1;

  ReplayConfig config;
  config.service.transport = "tcp";
  NetReplaySession session(qd, trained, config);
  ReplayClientResult client;
  serve::ServiceReport report;

  ThreadPool pool(2);
  pool.run_chunks(2, [&](int chunk) {
    if (chunk == 0) {
      auto conn = listener->accept_conn();
      report = session.run(*conn);
    } else {
      auto conn = tcp_connect("127.0.0.1", listener->port());
      client = replay_trace_client(*conn, {request}, "tcp-tenant", hash);
    }
  });

  ASSERT_EQ(client.acks.size(), 1u);
  EXPECT_TRUE(client.acks[0].accepted);
  EXPECT_EQ(client.report_json, report.to_json());
  EXPECT_EQ(report.transport, "tcp");
  EXPECT_EQ(report.completed.size(), 1u);
  EXPECT_TRUE(qd->forgotten_classes().count(1));
}

TEST(Socket, ServeHttpAnswersOverTcpAndHonoursStop) {
  auto listener = try_listen();
  if (!listener) GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";

  std::atomic<bool> stop{false};
  std::atomic<int> idle_ticks{0};
  std::string response;

  ThreadPool pool(2);
  pool.run_chunks(2, [&](int chunk) {
    if (chunk == 0) {
      serve_http(
          *listener,
          [](const HttpRequest& request) {
            return HttpResponse{.status = 200, .body = "{\"echo\": \"" + request.target + "\"}"};
          },
          [&] { ++idle_ticks; }, [&] { return stop.load(); }, /*idle_timeout_ms=*/10);
    } else {
      auto conn = tcp_connect("127.0.0.1", listener->port());
      const std::string wire = "GET /ping HTTP/1.1\r\n\r\n";
      conn->write_all(std::span(reinterpret_cast<const std::uint8_t*>(wire.data()),
                                wire.size()));
      conn->finish_write();
      std::uint8_t buf[512];
      while (const auto n = conn->read_some(buf)) {
        response.append(reinterpret_cast<const char*>(buf), n);
      }
      stop.store(true);
    }
  });

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"echo\": \"/ping\"}"), std::string::npos);
  EXPECT_GE(idle_ticks.load(), 0);
}

TEST(Socket, ServeHttpSurvivesAbruptAndIdleClients) {
  auto listener = try_listen();
  if (!listener) GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";

  std::atomic<bool> stop{false};
  std::string response;

  ThreadPool pool(2);
  pool.run_chunks(2, [&](int chunk) {
    if (chunk == 0) {
      serve_http(
          *listener,
          [](const HttpRequest& request) {
            return HttpResponse{.status = 200, .body = "{\"echo\": \"" + request.target + "\"}"};
          },
          /*idle_hook=*/{}, [&] { return stop.load(); }, /*idle_timeout_ms=*/5,
          /*conn_idle_limit_ms=*/25);
    } else {
      {
        // Half a request line, then vanish: the server's 400 lands on a
        // closing socket. The accept loop must shrug it off.
        const auto bad = tcp_connect("127.0.0.1", listener->port());
        const std::string partial = "GET /partial";
        bad->write_all(std::span(reinterpret_cast<const std::uint8_t*>(partial.data()),
                                 partial.size()));
      }
      {
        // A silent connection: the idle limit drops it, which we observe as
        // end-of-stream instead of blocking forever.
        const auto idle = tcp_connect("127.0.0.1", listener->port());
        std::uint8_t buf[64];
        EXPECT_EQ(idle->read_some(buf), 0u);
      }
      // The loop is still accepting: a well-formed request gets answered.
      const auto good = tcp_connect("127.0.0.1", listener->port());
      const std::string wire = "GET /alive HTTP/1.1\r\n\r\n";
      good->write_all(
          std::span(reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
      good->finish_write();
      std::uint8_t buf[512];
      while (const auto n = good->read_some(buf)) {
        response.append(reinterpret_cast<const char*>(buf), n);
      }
      stop.store(true);
    }
  });

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"echo\": \"/alive\"}"), std::string::npos);
}

TEST(Socket, ConnectToClosedPortThrowsIoFailure) {
  // Bind then immediately destroy the listener to find a port that is very
  // likely closed; a refused connect must surface as a typed NetError.
  std::uint16_t port = 0;
  {
    const auto listener = try_listen();
    if (!listener) GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";
    port = listener->port();
  }
  try {
    tcp_connect("127.0.0.1", port);
    GTEST_SKIP() << "port was re-bound between tests";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code, NetErrorCode::kIoFailure);
  }
}

}  // namespace
}  // namespace quickdrop::net
