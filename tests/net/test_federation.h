// Shared miniature federation for the net/ test suites: same shape as the
// one in tests/serve/service_test.cpp (4 classes, 4 dirichlet clients, width
// 12, seeds 7/19/99) so identity results carry across suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/convnet.h"
#include "util/thread_pool.h"

namespace quickdrop::net::testing {

struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

inline data::TrainTest make_mini_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 32;
  spec.test_per_class = 8;
  spec.noise = 0.35f;
  spec.seed = 33;
  return data::make_synthetic(spec);
}

/// A fresh federation per run: the factory's shared RNG must start at the
/// same point for every run under comparison.
struct MiniFederation {
  data::TrainTest tt;
  std::vector<data::Dataset> clients;
  fl::ModelFactory factory;

  MiniFederation() : tt(make_mini_data()) {
    Rng prng(7);
    clients = data::materialize(tt.train, data::dirichlet_partition(tt.train, 4, 0.5f, prng));
    nn::ConvNetConfig net;
    net.in_channels = 1;
    net.image_size = 8;
    net.num_classes = 4;
    net.width = 12;
    net.depth = 1;
    auto shared_rng = std::make_shared<Rng>(19);
    factory = [shared_rng, net] { return nn::make_convnet(net, *shared_rng); };
  }

  static core::QuickDropConfig config() {
    core::QuickDropConfig cfg;
    cfg.fl_rounds = 5;
    cfg.local_steps = 3;
    cfg.batch_size = 16;
    cfg.train_lr = 0.1f;
    cfg.scale = 10;
    cfg.unlearn_rounds = 2;
    cfg.recovery_rounds = 2;
    cfg.unlearn_local_steps = 4;
    cfg.unlearn_batch_size = 16;
    cfg.unlearn_lr = 0.05f;
    cfg.recover_lr = 0.05f;
    return cfg;
  }
};

inline void expect_states_bitwise_equal(const nn::ModelState& a, const nn::ModelState& b,
                                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    ASSERT_EQ(a.at(j), b.at(j)) << what << ": flat entry " << j;
  }
}

}  // namespace quickdrop::net::testing
