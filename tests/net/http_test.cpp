// HTTP front door: incremental parser grammar and caps, connection serving
// over the loopback Io, and the JSON API (auth, admission, status polling,
// metrics, per-tenant accounting) driven entirely without sockets.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/api.h"
#include "net/http.h"
#include "net/io.h"
#include "test_federation.h"

namespace quickdrop::net {
namespace {

using testing::MiniFederation;
using testing::ThreadGuard;

/// Feeds `wire` to a reader through the loopback pipe and half-closes.
std::shared_ptr<Io> feed(const std::string& wire) {
  auto pair = make_loopback();
  pair.client->write_all(
      std::span(reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
  pair.client->finish_write();
  return pair.server;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(HttpParser, ParsesRequestLineHeadersAndBody) {
  auto io = feed(
      "POST /unlearn HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "{}()");
  HttpConnReader reader(*io);
  const auto request = reader.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->target, "/unlearn");
  EXPECT_EQ(request->version, "HTTP/1.1");
  EXPECT_EQ(request->header("content-type"), "application/json");
  EXPECT_EQ(request->header("host"), "localhost");
  EXPECT_EQ(request->header("absent"), "");
  EXPECT_EQ(request->body, "{}()");
  EXPECT_FALSE(reader.next().has_value());  // clean EOF at message boundary
}

TEST(HttpParser, AcceptsBareLfAndPipelinedRequests) {
  auto io = feed(
      "GET /metrics HTTP/1.1\n\n"
      "GET /request/3 HTTP/1.1\r\n\r\n");
  HttpConnReader reader(*io);
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->target, "/metrics");
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->target, "/request/3");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(HttpParser, MalformedInputsThrowTypedErrors) {
  const std::vector<std::string> bad = {
      "GARBAGE\r\n\r\n",                                      // no method/target/version
      "GET /\r\n\r\n",                                        // missing version
      "GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",          // non-numeric length
      "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",         // negative length
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"  // unsupported framing
  };
  for (const auto& wire : bad) {
    auto io = feed(wire);
    HttpConnReader reader(*io);
    try {
      reader.next();
      ADD_FAILURE() << "accepted: " << wire.substr(0, 40);
    } catch (const NetError& e) {
      EXPECT_EQ(e.code, NetErrorCode::kMalformedHttp) << wire.substr(0, 40);
    }
  }
}

TEST(HttpParser, TruncatedMessagesThrowClosed) {
  // Stream ends mid-head and mid-body: both are torn messages, not EOF.
  for (const char* wire :
       {"GET / HTTP/1.1\r\nHost: x", "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"}) {
    auto io = feed(wire);
    HttpConnReader reader(*io);
    EXPECT_THROW(reader.next(), NetError) << wire;
  }
}

TEST(HttpParser, EnforcesHeadAndBodyCaps) {
  const std::string huge_head =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(kMaxHttpHeadBytes, 'a') + "\r\n\r\n";
  EXPECT_THROW(HttpConnReader(*feed(huge_head)).next(), NetError);

  const std::string huge_body = "POST / HTTP/1.1\r\nContent-Length: " +
                                std::to_string(kMaxHttpBodyBytes + 1) + "\r\n\r\n";
  EXPECT_THROW(HttpConnReader(*feed(huge_body)).next(), NetError);
}

TEST(HttpParser, WriteResponseFormatsStatusAndLength) {
  auto pair = make_loopback();
  write_response(*pair.client, {.status = 202, .body = "{\"id\": 1}"});
  pair.client->finish_write();
  std::string got;
  std::uint8_t buf[256];
  while (const auto n = pair.server->read_some(buf)) {
    got.append(reinterpret_cast<const char*>(buf), n);
  }
  EXPECT_NE(got.find("HTTP/1.1 202 Accepted\r\n"), std::string::npos);
  EXPECT_NE(got.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_NE(got.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(got.find("\r\n\r\n{\"id\": 1}"), std::string::npos);
}

TEST(HttpParser, ServeConnAnswersMalformedWith400) {
  auto pair = make_loopback();
  const std::string wire = "GARBAGE\r\n\r\n";
  pair.client->write_all(
      std::span(reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
  pair.client->finish_write();
  serve_http_conn(*pair.server,
                  [](const HttpRequest&) { return HttpResponse{.status = 200}; });
  std::string got;
  std::uint8_t buf[256];
  while (const auto n = pair.client->read_some(buf)) {
    got.append(reinterpret_cast<const char*>(buf), n);
  }
  EXPECT_NE(got.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(got.find("malformed-http"), std::string::npos);
}

/// Io whose reads come from a prepared stream but whose writes fail the way
/// a peer that reset the connection makes TcpConn::write_all fail.
class BrokenWriteIo : public Io {
 public:
  explicit BrokenWriteIo(std::shared_ptr<Io> in) : in_(std::move(in)) {}
  std::size_t read_some(std::span<std::uint8_t> buf) override { return in_->read_some(buf); }
  void write_all(std::span<const std::uint8_t>) override {
    throw NetError(NetErrorCode::kIoFailure, "peer reset");
  }
  void finish_write() override { throw NetError(NetErrorCode::kIoFailure, "peer reset"); }

 private:
  std::shared_ptr<Io> in_;
};

TEST(HttpParser, ServeConnSurvivesPeerGoneBeforeResponse) {
  // Valid request and malformed garbage: in both cases the peer is gone by
  // response time, and the failed write must stay inside the connection.
  for (const char* wire : {"GET /ping HTTP/1.1\r\n\r\n", "GARBAGE\r\n\r\n"}) {
    BrokenWriteIo io(feed(wire));
    EXPECT_NO_THROW(serve_http_conn(
        io, [](const HttpRequest&) { return HttpResponse{.status = 200, .body = "{}"}; }))
        << wire;
  }
}

TEST(HttpParser, ServeConnTurnsHandlerExceptionsInto500) {
  auto pair = make_loopback();
  const std::string wire = "GET /boom HTTP/1.1\r\n\r\n";
  pair.client->write_all(
      std::span(reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
  pair.client->finish_write();
  serve_http_conn(*pair.server, [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  std::string got;
  std::uint8_t buf[256];
  while (const auto n = pair.client->read_some(buf)) {
    got.append(reinterpret_cast<const char*>(buf), n);
  }
  EXPECT_NE(got.find("HTTP/1.1 500"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tenants
// ---------------------------------------------------------------------------

TEST(Tenants, ParseTenantSpecs) {
  const auto tenants = parse_tenant_specs("acme=s3cret,beta=tok2");
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].name, "acme");
  EXPECT_EQ(tenants[0].token, "s3cret");
  EXPECT_EQ(tenants[1].name, "beta");
  EXPECT_EQ(tenants[1].token, "tok2");

  EXPECT_THROW(parse_tenant_specs("noequals"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("=token"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("name="), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a=1,a=2"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs(",a=1"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// API service (no sockets: handle()/drain() driven directly)
// ---------------------------------------------------------------------------

struct ApiFixture {
  MiniFederation fed;
  std::shared_ptr<core::QuickDrop> qd;
  std::unique_ptr<ApiService> api;

  explicit ApiFixture(const std::string& tenant_spec = "") {
    set_num_threads(1);
    qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, MiniFederation::config(),
                                           99);
    const auto trained = qd->train();
    ApiConfig config;
    config.service.transport = "http";
    if (!tenant_spec.empty()) config.tenants = parse_tenant_specs(tenant_spec);
    api = std::make_unique<ApiService>(qd, trained, config);
  }
};

HttpRequest post_unlearn(const std::string& body, const std::string& auth = "") {
  HttpRequest request;
  request.method = "POST";
  request.target = "/unlearn";
  request.version = "HTTP/1.1";
  if (!auth.empty()) request.headers["authorization"] = auth;
  request.body = body;
  return request;
}

HttpRequest get(const std::string& target, const std::string& auth = "") {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  request.version = "HTTP/1.1";
  if (!auth.empty()) request.headers["authorization"] = auth;
  return request;
}

TEST(ApiService, QueuedThenCompletedLifecycle) {
  ThreadGuard guard;
  ApiFixture fx;

  // Admission ids are the queue's: monotonically increasing from 0.
  const auto accepted = fx.api->handle(post_unlearn(R"({"kind": "class", "target": 1})"));
  EXPECT_EQ(accepted.status, 202);
  EXPECT_NE(accepted.body.find("\"id\": 0"), std::string::npos);
  EXPECT_NE(accepted.body.find("\"status\": \"queued\""), std::string::npos);

  // Visible as queued until drain() runs the cycle.
  const auto pending = fx.api->handle(get("/request/0"));
  EXPECT_EQ(pending.status, 200);
  EXPECT_NE(pending.body.find("\"queued\""), std::string::npos);

  fx.api->drain();
  const auto done = fx.api->handle(get("/request/0"));
  EXPECT_EQ(done.status, 200);
  EXPECT_NE(done.body.find("\"completed\""), std::string::npos);
  EXPECT_TRUE(fx.qd->forgotten_classes().count(1));
  EXPECT_GT(fx.api->clock_seconds(), 0.0);

  const auto missing = fx.api->handle(get("/request/77"));
  EXPECT_EQ(missing.status, 404);
}

TEST(ApiService, RejectsBadRequestsWithTypedJson) {
  ThreadGuard guard;
  ApiFixture fx;

  // Target outside the deployment.
  const auto out_of_range = fx.api->handle(post_unlearn(R"({"kind": "class", "target": 99})"));
  EXPECT_EQ(out_of_range.status, 400);
  EXPECT_NE(out_of_range.body.find("\"rejected\""), std::string::npos);
  EXPECT_NE(out_of_range.body.find("target-out-of-range"), std::string::npos);

  // Malformed JSON, missing fields, wrong method, bad id segment.
  EXPECT_EQ(fx.api->handle(post_unlearn("{not json")).status, 400);
  EXPECT_EQ(fx.api->handle(post_unlearn(R"({"kind": "class"})")).status, 400);
  EXPECT_EQ(fx.api->handle(get("/unlearn")).status, 405);
  EXPECT_EQ(fx.api->handle(get("/request/abc")).status, 400);
  // All digits but past int64: must be a 400, not an out_of_range 500.
  EXPECT_EQ(fx.api->handle(get("/request/99999999999999999999")).status, 400);
  EXPECT_EQ(fx.api->handle(get("/nowhere")).status, 404);
}

TEST(ApiService, BearerAuthGatesEveryRouteAndAccountsPerTenant) {
  ThreadGuard guard;
  ApiFixture fx("acme=s3cret,beta=tok2");

  // No/wrong credentials: 401 on every route.
  EXPECT_EQ(fx.api->handle(post_unlearn(R"({"kind": "class", "target": 1})")).status, 401);
  EXPECT_EQ(fx.api->handle(get("/metrics")).status, 401);
  EXPECT_EQ(fx.api->handle(get("/request/1", "Bearer wrong")).status, 401);
  EXPECT_EQ(fx.api->handle(get("/metrics", "Basic s3cret")).status, 401);

  // Valid tokens resolve to their tenants; admissions/rejections are
  // accounted to the caller.
  const auto ok =
      fx.api->handle(post_unlearn(R"({"kind": "class", "target": 1})", "Bearer s3cret"));
  EXPECT_EQ(ok.status, 202);
  const auto rejected =
      fx.api->handle(post_unlearn(R"({"kind": "class", "target": 99})", "Bearer tok2"));
  EXPECT_EQ(rejected.status, 400);

  fx.api->drain();
  const auto& stats = fx.api->tenant_stats();
  ASSERT_TRUE(stats.count("acme"));
  ASSERT_TRUE(stats.count("beta"));
  EXPECT_EQ(stats.at("acme").admitted, 1);
  EXPECT_EQ(stats.at("acme").completed, 1);
  EXPECT_EQ(stats.at("beta").admitted, 0);
  EXPECT_EQ(stats.at("beta").rejected, 1);

  const auto metrics = fx.api->handle(get("/metrics", "Bearer tok2"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\"tenants\""), std::string::npos);
  EXPECT_NE(metrics.body.find("\"acme\""), std::string::npos);
  EXPECT_NE(metrics.body.find("\"report\""), std::string::npos);
}

TEST(ApiService, BearerAuthRejectsNearMissTokensOfAnyLength) {
  // The comparison is constant-time (no early exit on the first differing
  // byte or on a length mismatch), so every near-miss shape must land on the
  // same 401: equal length with one byte off, a strict prefix of the real
  // token, the real token with a suffix appended, and the empty token.
  ThreadGuard guard;
  ApiFixture fx("acme=s3cret,beta=tok2");

  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer s3creX")).status, 401);  // equal length
  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer X3cret")).status, 401);  // equal length
  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer s3cre")).status, 401);   // one short
  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer s3cret2")).status, 401); // one long
  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer ")).status, 401);        // empty token

  // Every stored token still authenticates after the scan-all-tenants change.
  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer s3cret")).status, 200);
  EXPECT_EQ(fx.api->handle(get("/metrics", "Bearer tok2")).status, 200);
}

TEST(ApiService, OpenApiAccountsToDefaultTenant) {
  ThreadGuard guard;
  ApiFixture fx;
  EXPECT_EQ(fx.api->handle(post_unlearn(R"({"kind": "client", "target": 2})")).status, 202);
  fx.api->drain();
  const auto& stats = fx.api->tenant_stats();
  ASSERT_TRUE(stats.count("default"));
  EXPECT_EQ(stats.at("default").admitted, 1);
  EXPECT_EQ(stats.at("default").completed, 1);
  const auto report = fx.api->report();
  EXPECT_EQ(report.completed.size(), 1u);
  EXPECT_EQ(report.transport, "http");
}

}  // namespace
}  // namespace quickdrop::net
