// The PR's acceptance bar: replaying a trace through the loopback transport
// must produce a bitwise-identical model and identical per-request outcomes
// to the in-process service path — at 1 and 4 threads, under an active
// fault plan, and across a killed-and-resumed mid-request cycle. Network
// accounting (wire bytes, net seconds) is out-of-band, so stripping those
// report lines must leave the two JSONs byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "net/replay.h"
#include "serve/service.h"
#include "test_federation.h"
#include "util/thread_pool.h"

namespace quickdrop::net {
namespace {

using testing::expect_states_bitwise_equal;
using testing::MiniFederation;
using testing::ThreadGuard;

serve::ServiceRequest class_request(int target, double arrival) {
  serve::ServiceRequest request;
  request.kind = serve::RequestKind::kClass;
  request.target = target;
  request.arrival_seconds = arrival;
  return request;
}

std::vector<serve::ServiceRequest> clustered_trace() {
  return {class_request(1, 0.0), class_request(2, 5.0), class_request(3, 9.0)};
}

serve::CostModel slow_rounds() {
  serve::CostModel cost;
  cost.seconds_per_round = 50.0;
  cost.seconds_per_sample_grad = 0.0;
  return cost;
}

/// Drops the out-of-band network overlay lines — the same gate filter
/// scripts/run_all.sh applies before diffing inproc vs loopback reports.
std::string strip_net_lines(const std::string& json) {
  std::istringstream in(json);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"transport\"") != std::string::npos) continue;
    if (line.find("\"wire_") != std::string::npos) continue;
    if (line.find("\"net_") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

struct RunResult {
  nn::ModelState state;
  serve::ServiceReport report;
  std::string json;
  ReplayClientResult client;  ///< loopback runs only
};

RunResult run_inproc(serve::SchedulerPolicy policy, int threads, core::QuickDropConfig cfg,
                     const std::vector<serve::ServiceRequest>& trace) {
  set_num_threads(threads);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd->train();
  serve::ServiceConfig config;
  config.policy = policy;
  config.cost_model = slow_rounds();
  serve::UnlearningService service(qd, trained, config);
  RunResult out{.state = {}, .report = service.run(trace), .json = {}, .client = {}};
  out.state = service.state();
  out.json = out.report.to_json();
  return out;
}

RunResult run_loopback(serve::SchedulerPolicy policy, int threads, core::QuickDropConfig cfg,
                       const std::vector<serve::ServiceRequest>& trace,
                       core::UnlearnCursorCallback cursor_callback = {}) {
  set_num_threads(threads);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto trained = qd->train();
  const std::uint64_t hash = qd->state_layout()->hash();

  ReplayConfig config;
  config.service.policy = policy;
  config.service.cost_model = slow_rounds();
  config.service.transport = "loopback";
  config.service.wire_bytes_per_second = 1e6;
  config.service.cursor_callback = std::move(cursor_callback);
  config.codec = fl::Codec::kInt8;

  // Loopback writes never block, so one thread drives all three phases:
  // send the whole trace, serve it, then collect acks + report.
  auto pair = make_loopback();
  replay_send_trace(*pair.client, trace, "test-tenant", hash);
  NetReplaySession session(qd, trained, config);
  RunResult out{.state = {}, .report = session.run(*pair.server), .json = {}, .client = {}};
  out.client = replay_collect(*pair.client, hash);
  out.state = session.state();
  out.json = out.report.to_json();
  return out;
}

TEST(LoopbackIo, PollReadableReflectsBufferedBytesAndEof) {
  auto pair = make_loopback();
  EXPECT_FALSE(pair.server->poll_readable(0));
  const std::uint8_t byte = 7;
  pair.client->write_all(std::span(&byte, 1));
  EXPECT_TRUE(pair.server->poll_readable(0));
  std::uint8_t out[4];
  EXPECT_EQ(pair.server->read_some(out), 1u);
  EXPECT_FALSE(pair.server->poll_readable(0));
  pair.client->finish_write();
  // End-of-stream counts as readable: read_some returns 0 without blocking.
  EXPECT_TRUE(pair.server->poll_readable(0));
  EXPECT_EQ(pair.server->read_some(out), 0u);
}

TEST(LoopbackReplay, TraceClientDrainsAcksBetweenSends) {
  // A hand-rolled server acks every request the moment it arrives, so acks
  // race the client's remaining sends. The client must drain them between
  // sends (this is what keeps a large TCP trace from deadlocking against
  // the server's blocking ack writes) and still assemble them in order.
  constexpr std::uint64_t kHash = 0x5EED0001ULL;
  constexpr int kRequests = 64;
  auto pair = make_loopback();
  ReplayClientResult result;
  ThreadPool pool(2);
  pool.run_chunks(2, [&](int chunk) {
    if (chunk == 0) {
      std::int64_t next_id = 0;
      for (;;) {
        const auto frame = read_frame(*pair.server, kHash);
        if (!frame || frame->type == FrameType::kEndOfTrace) break;
        WireAck ack;
        ack.accepted = true;
        ack.id = next_id++;
        write_frame(*pair.server, make_ack_frame(ack, kHash));
      }
      write_frame(*pair.server, make_report_frame("{\"ok\": true}", kHash));
      pair.server->finish_write();
    } else {
      const std::vector<serve::ServiceRequest> trace(kRequests, class_request(1, 0.0));
      result = replay_trace_client(*pair.client, trace, "t", kHash);
    }
  });
  ASSERT_EQ(result.acks.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(result.acks[i].accepted) << i;
    EXPECT_EQ(result.acks[i].id, i);
  }
  EXPECT_EQ(result.report_json, "{\"ok\": true}");
  EXPECT_GT(result.bytes_received, 0);
}

TEST(LoopbackReplay, BitIdenticalToInProcessAtOneAndFourThreads) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();
  const auto trace = clustered_trace();

  const auto inproc = run_inproc(serve::SchedulerPolicy::kCoalesce, 1, cfg, trace);
  for (const int threads : {1, 4}) {
    const auto loop = run_loopback(serve::SchedulerPolicy::kCoalesce, threads, cfg, trace);
    expect_states_bitwise_equal(inproc.state, loop.state, "loopback vs inproc");
    // Identical modulo the out-of-band network overlay...
    EXPECT_EQ(strip_net_lines(inproc.json), strip_net_lines(loop.json)) << threads;
    EXPECT_NE(inproc.json, loop.json);  // ...which really is present.

    // Per-request outcomes arrive as acks, in trace order, with queue ids.
    ASSERT_EQ(loop.client.acks.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_TRUE(loop.client.acks[i].accepted) << i;
      EXPECT_EQ(loop.client.acks[i].id, static_cast<std::int64_t>(i));
    }
    // The client's report frame is the server's report, byte for byte.
    EXPECT_EQ(loop.client.report_json, loop.json);
  }
}

TEST(LoopbackReplay, BitIdenticalAcrossThreadCountsUnderFaultPlan) {
  ThreadGuard guard;
  auto cfg = MiniFederation::config();
  fl::FaultRates rates;
  rates.crash = 0.15f;
  rates.corrupt_nan = 0.1f;
  rates.straggler = 0.1f;
  cfg.faults = fl::FaultPlan(77, rates);
  cfg.defense.min_quorum = 0.25f;
  cfg.defense.max_round_attempts = 2;
  const auto trace = clustered_trace();

  const auto inproc = run_inproc(serve::SchedulerPolicy::kFifo, 1, cfg, trace);
  const auto serial = run_loopback(serve::SchedulerPolicy::kFifo, 1, cfg, trace);
  const auto parallel = run_loopback(serve::SchedulerPolicy::kFifo, 4, cfg, trace);

  expect_states_bitwise_equal(inproc.state, serial.state, "faulted loopback vs inproc");
  expect_states_bitwise_equal(serial.state, parallel.state, "faulted 1 vs 4 threads");
  // Between loopback runs even the wire columns must agree, so the whole
  // JSON is comparable; against inproc only the overlay differs.
  EXPECT_EQ(serial.json, parallel.json);
  EXPECT_EQ(strip_net_lines(inproc.json), strip_net_lines(serial.json));
}

TEST(LoopbackReplay, WireAccountingIsPresentAndOutOfBand) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();
  const auto loop = run_loopback(serve::SchedulerPolicy::kCoalesce, 1, cfg, clustered_trace());

  EXPECT_EQ(loop.report.transport, "loopback");
  EXPECT_GT(loop.report.wire_request_bytes, 0);
  EXPECT_GT(loop.report.wire_ack_bytes, 0);
  EXPECT_GT(loop.report.wire_state_bytes_raw, 0);
  // int8 quantization must beat shipping raw float32 state.
  EXPECT_LT(loop.report.wire_state_bytes_quantized, loop.report.wire_state_bytes_raw);
  for (const auto& metrics : loop.report.completed) {
    EXPECT_GT(metrics.wire_bytes, 0) << metrics.id;
    // net_seconds = wire_bytes / wire_bytes_per_second, out-of-band.
    EXPECT_DOUBLE_EQ(metrics.net_seconds,
                     static_cast<double>(metrics.wire_bytes) / 1e6);
  }
  // Out-of-band means the sim clock never saw the network.
  const auto inproc = run_inproc(serve::SchedulerPolicy::kCoalesce, 1, cfg, clustered_trace());
  EXPECT_EQ(loop.report.sim_clock_seconds, inproc.report.sim_clock_seconds);
}

TEST(LoopbackReplay, AcksCarryRejectionsIdenticalToInProcess) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();
  auto trace = clustered_trace();
  trace.push_back(class_request(2, 10.0));   // duplicate of a pending request
  trace.push_back(class_request(99, 11.0));  // out of range

  const auto inproc = run_inproc(serve::SchedulerPolicy::kCoalesce, 1, cfg, trace);
  const auto loop = run_loopback(serve::SchedulerPolicy::kCoalesce, 1, cfg, trace);

  expect_states_bitwise_equal(inproc.state, loop.state, "with rejections");
  EXPECT_EQ(strip_net_lines(inproc.json), strip_net_lines(loop.json));
  ASSERT_EQ(loop.client.acks.size(), 5u);
  EXPECT_FALSE(loop.client.acks[3].accepted);
  EXPECT_EQ(loop.client.acks[3].reason, serve::RejectReason::kDuplicatePending);
  EXPECT_FALSE(loop.client.acks[4].accepted);
  EXPECT_EQ(loop.client.acks[4].reason, serve::RejectReason::kTargetOutOfRange);
  ASSERT_EQ(loop.report.rejected.size(), 2u);
  EXPECT_EQ(inproc.report.rejected.size(), 2u);
}

TEST(LoopbackReplay, KilledMidRequestResumesBitwiseIdentical) {
  ThreadGuard guard;
  const auto cfg = MiniFederation::config();
  const auto request = class_request(1, 0.0);

  // Uninterrupted loopback replay of one request at 1 thread, checkpointing
  // mid-recovery exactly as a crash-safe deployment would (serve --resume).
  std::vector<std::uint8_t> checkpoint_bytes;
  nn::ModelState full_state;
  {
    std::shared_ptr<core::QuickDrop> qd_for_cb;
    set_num_threads(1);
    MiniFederation fed;
    auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
    qd_for_cb = qd;
    const auto trained = qd->train();
    const std::uint64_t hash = qd->state_layout()->hash();
    ReplayConfig config;
    config.service.transport = "loopback";
    config.service.cursor_callback = [&](const core::UnlearnCursor& cursor,
                                         const nn::ModelState& state) {
      if (cursor.phase != core::UnlearnCursor::kPhaseRecover || cursor.rounds_done != 1) {
        return;
      }
      auto cp = core::make_checkpoint(state, qd_for_cb->stores());
      cp.cursor = core::RoundCursor{.phase = "recover",
                                    .rounds_done = cursor.rounds_done,
                                    .rng_state = cursor.rng_state};
      checkpoint_bytes = core::serialize_checkpoint(cp);
    };
    auto pair = make_loopback();
    replay_send_trace(*pair.client, {request}, "t", hash);
    NetReplaySession session(qd, trained, config);
    session.run(*pair.server);
    replay_collect(*pair.client, hash);
    full_state = session.state();
  }
  ASSERT_FALSE(checkpoint_bytes.empty());

  // A fresh coordinator (same seed, no training) restores the checkpoint and
  // resumes the in-flight recovery at 4 threads: bitwise-identical landing.
  set_num_threads(4);
  MiniFederation fed;
  auto qd = std::make_shared<core::QuickDrop>(fed.factory, fed.clients, cfg, 99);
  const auto cp = core::deserialize_checkpoint(checkpoint_bytes);
  ASSERT_TRUE(cp.cursor.has_value());
  qd->load_stores(core::restore_stores(cp));
  serve::Executor executor(qd, serve::CostModel{});
  core::UnlearnCursor resume;
  resume.phase = core::UnlearnCursor::kPhaseRecover;
  resume.rounds_done = cp.cursor->rounds_done;
  resume.rng_state = cp.cursor->rng_state;
  const auto resumed = executor.execute(cp.global, {request}, {}, &resume);

  expect_states_bitwise_equal(full_state, resumed.state, "resumed loopback replay");
  EXPECT_TRUE(qd->forgotten_classes().count(1));
}

}  // namespace
}  // namespace quickdrop::net
