#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "autograd/var.h"

namespace quickdrop::ag {
namespace {

Tensor seq_tensor(Shape shape, float start = 0.3f, float step = 0.17f) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t.at(i) = start + step * static_cast<float>(i % 13);
  return t;
}

TEST(AutogradTest, LeafAndConstantFlags) {
  const Var leaf = Var::leaf(Tensor::scalar(1.0f));
  const Var c = Var::constant(Tensor::scalar(1.0f));
  EXPECT_TRUE(leaf.requires_grad());
  EXPECT_FALSE(c.requires_grad());
  EXPECT_FALSE(leaf.detach().requires_grad());
}

TEST(AutogradTest, SimpleChainGradient) {
  // y = sum((2x + 1)^2), dy/dx = 2*(2x+1)*2
  const Var x = Var::leaf(Tensor({2}, {1.0f, -0.5f}));
  const Var y = sum_all(square(add_scalar(mul_scalar(x, 2.0f), 1.0f)));
  const auto g = grad(y, {x});
  EXPECT_NEAR(g[0].value().at(0), 12.0f, 1e-5f);
  EXPECT_NEAR(g[0].value().at(1), 0.0f, 1e-5f);
}

TEST(AutogradTest, GradOfUnrelatedInputIsZero) {
  const Var x = Var::leaf(Tensor::scalar(1.0f));
  const Var z = Var::leaf(Tensor({3}, {1, 2, 3}));
  const Var y = mul_scalar(x, 2.0f);
  const auto g = grad(y, {x, z});
  EXPECT_FLOAT_EQ(g[0].value().item(), 2.0f);
  EXPECT_EQ(g[1].value().shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(g[1].value().at(0), 0.0f);
}

TEST(AutogradTest, NodeReusedTwiceAccumulates) {
  // y = sum(x*x + x) via reusing x twice.
  const Var x = Var::leaf(Tensor::scalar(3.0f));
  const Var y = add(mul(x, x), x);
  const auto g = grad(y, {x});
  EXPECT_FLOAT_EQ(g[0].value().item(), 7.0f);
}

TEST(AutogradTest, GradThroughConstantStops) {
  const Var x = Var::leaf(Tensor::scalar(2.0f));
  const Var y = mul(x.detach(), x);  // d/dx = detach(x) = 2
  const auto g = grad(y, {x});
  EXPECT_FLOAT_EQ(g[0].value().item(), 2.0f);
}

TEST(AutogradTest, GradRequiresScalarOutput) {
  const Var x = Var::leaf(Tensor({2}, {1, 2}));
  EXPECT_THROW(grad(mul_scalar(x, 2.0f), {x}), std::invalid_argument);
}

// ---- Numeric gradient checks per primitive ----

TEST(GradcheckTest, AddSubBroadcast) {
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(square(sub(add(v[0], v[1]), v[2])));
  };
  const std::vector<Tensor> inputs = {seq_tensor({2, 3}), seq_tensor({3}, 0.1f),
                                      seq_tensor({2, 1}, -0.4f)};
  EXPECT_LT(max_gradient_error(f, inputs), 1e-2);
}

TEST(GradcheckTest, MulDivBroadcast) {
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(div(mul(v[0], v[1]), add_scalar(square(v[2]), 1.0f)));
  };
  const std::vector<Tensor> inputs = {seq_tensor({2, 2}), seq_tensor({2}, 0.5f),
                                      seq_tensor({2, 2}, 1.0f)};
  EXPECT_LT(max_gradient_error(f, inputs), 1e-2);
}

TEST(GradcheckTest, ExpLogSqrt) {
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(add(exp(mul_scalar(v[0], 0.3f)), add(log(add_scalar(v[0], 3.0f)),
                                                        sqrt(add_scalar(v[0], 4.0f)))));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({2, 3})}), 1e-2);
}

TEST(GradcheckTest, ReluAwayFromKink) {
  const auto f = [](const std::vector<Var>& v) { return sum_all(square(relu(v[0]))); };
  // Values far from 0 so finite differences do not straddle the kink.
  Tensor t({4}, {1.5f, -2.0f, 3.0f, -0.7f});
  EXPECT_LT(max_gradient_error(f, {t}, 1e-3f), 1e-2);
}

TEST(GradcheckTest, MatmulTranspose) {
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(square(matmul(v[0], transpose(v[1]))));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({2, 3}), seq_tensor({4, 3}, -0.2f)}), 2e-2);
}

TEST(GradcheckTest, ReshapePermute) {
  const auto f = [](const std::vector<Var>& v) {
    const Var r = reshape(v[0], {3, 2, 2});
    return sum_all(square(permute(r, {2, 0, 1})));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({2, 6})}), 1e-2);
}

TEST(GradcheckTest, ReduceBroadcast) {
  const auto f = [](const std::vector<Var>& v) {
    const Var r = reduce_sum_to(v[0], {2, 1});
    return sum_all(square(broadcast_to(r, {2, 5})));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({2, 5})}), 2e-2);
}

TEST(GradcheckTest, Im2ColCol2Im) {
  const auto f = [](const std::vector<Var>& v) {
    const Var cols = im2col(v[0], 3, 1, 1);
    return sum_all(square(cols));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({1, 2, 4, 4})}), 2e-2);
}

TEST(GradcheckTest, ConvViaIm2ColMatmul) {
  const auto f = [](const std::vector<Var>& v) {
    const Var cols = im2col(v[0], 3, 1, 1);     // [C*9, N*H*W]
    const Var out = matmul(v[1], cols);         // [F, N*H*W]
    return mean_all(square(out));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({1, 2, 3, 3}), seq_tensor({2, 18}, -0.1f, 0.07f)}),
            1e-2);
}

TEST(GradcheckTest, LogSoftmaxCrossEntropy) {
  const auto f = [](const std::vector<Var>& v) { return cross_entropy(v[0], {1, 0, 2}); };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({3, 4}, -0.5f, 0.3f)}), 1e-2);
}

TEST(GradcheckTest, CrossEntropyGradSumsToZeroPerRow) {
  // d(CE)/dlogits = (softmax - onehot)/N: rows sum to zero.
  const Var logits = Var::leaf(seq_tensor({2, 5}, -1.0f, 0.4f));
  const Var loss = cross_entropy(logits, {3, 1});
  const auto g = grad(loss, {logits});
  for (int r = 0; r < 2; ++r) {
    float row = 0;
    for (int c = 0; c < 5; ++c) row += g[0].value().at(r * 5 + c);
    EXPECT_NEAR(row, 0.0f, 1e-6f);
  }
}

// ---- Second-order (grad-of-grad) checks: the property QuickDrop's
// gradient-matching distillation depends on. ----

TEST(SecondOrderTest, Polynomial) {
  const auto f = [](const std::vector<Var>& v) { return sum_all(mul(square(v[0]), v[0])); };
  EXPECT_LT(max_second_order_error(f, {seq_tensor({3}, 0.4f)}), 2e-2);
}

TEST(SecondOrderTest, ExpDivChain) {
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(div(exp(mul_scalar(v[0], 0.5f)), add_scalar(square(v[0]), 2.0f)));
  };
  EXPECT_LT(max_second_order_error(f, {seq_tensor({2, 2})}), 2e-2);
}

TEST(SecondOrderTest, MatmulBilinear) {
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(square(matmul(v[0], v[1])));
  };
  EXPECT_LT(max_second_order_error(f, {seq_tensor({2, 3}), seq_tensor({3, 2}, -0.3f)}), 5e-2);
}

TEST(SecondOrderTest, ThroughIm2ColConv) {
  const auto f = [](const std::vector<Var>& v) {
    const Var cols = im2col(v[0], 2, 0, 1);
    const Var out = matmul(v[1], cols);
    return mean_all(square(out));
  };
  EXPECT_LT(max_second_order_error(f, {seq_tensor({1, 1, 3, 3}), seq_tensor({2, 4}, -0.2f)}),
            2e-2);
}

TEST(SecondOrderTest, GradientMatchingShapedObjective) {
  // Mimics distillation: L(s) = || dLoss(w, s)/dw - g_target ||^2 where
  // Loss = mean(square(matmul(s, w))). Checks d L / d s numerically.
  Tensor w_val = seq_tensor({3, 2}, 0.2f, 0.11f);
  Tensor g_target = seq_tensor({3, 2}, -0.1f, 0.05f);
  const auto f = [&](const std::vector<Var>& v) {
    const Var w = Var::leaf(w_val.clone());
    const Var loss = mean_all(square(matmul(v[0], w)));
    const auto gw = grad(loss, {w}, {.create_graph = true});
    return sum_all(square(sub(gw[0], Var::constant(g_target))));
  };
  EXPECT_LT(max_gradient_error(f, {seq_tensor({2, 3}, 0.3f)}), 2e-2);
}

TEST(AutogradTest, CreateGraphFalseDetachesResult) {
  const Var x = Var::leaf(Tensor::scalar(2.0f));
  const Var y = mul(x, x);
  const auto g = grad(y, {x});
  EXPECT_FALSE(g[0].requires_grad());
  const auto g2 = grad(y, {x}, {.create_graph = true});
  EXPECT_TRUE(g2[0].requires_grad());
}

TEST(AutogradTest, SecondDerivativeExact) {
  // y = x^3, dy/dx = 3x^2, d2y/dx2 = 6x.
  const Var x = Var::leaf(Tensor::scalar(2.0f));
  const Var y = mul(mul(x, x), x);
  const auto g1 = grad(y, {x}, {.create_graph = true});
  const auto g2 = grad(sum_all(g1[0]), {x});
  EXPECT_NEAR(g2[0].value().item(), 12.0f, 1e-4f);
}

TEST(AutogradTest, ThirdDerivativeExact) {
  // y = x^4: y''' = 24x.
  const Var x = Var::leaf(Tensor::scalar(1.5f));
  const Var x2 = mul(x, x);
  const Var y = mul(x2, x2);
  const auto g1 = grad(y, {x}, {.create_graph = true});
  const auto g2 = grad(sum_all(g1[0]), {x}, {.create_graph = true});
  const auto g3 = grad(sum_all(g2[0]), {x});
  EXPECT_NEAR(g3[0].value().item(), 36.0f, 1e-3f);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Var x = Var::leaf(Tensor::scalar(1.0f));
  Var y = x;
  for (int i = 0; i < 20000; ++i) y = add_scalar(y, 0.0f);
  const auto g = grad(sum_all(y), {x});
  EXPECT_FLOAT_EQ(g[0].value().item(), 1.0f);
}

}  // namespace
}  // namespace quickdrop::ag
