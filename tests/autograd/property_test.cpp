// Parameterized property sweeps over the autograd engine: gradient checks
// across shapes and op combinations, and algebraic identities that must hold
// for any input.
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"

namespace quickdrop::ag {
namespace {

Tensor filled(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t.at(i) = rng.uniform(-1.0f, 1.0f);
  return t;
}

// ---- Gradcheck across broadcast shape pairs ----

using ShapePair = std::pair<Shape, Shape>;

class BroadcastGradSweep : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastGradSweep, MulThenSumGradchecks) {
  const auto& [sa, sb] = GetParam();
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(square(mul(v[0], add_scalar(v[1], 2.0f))));
  };
  EXPECT_LT(max_gradient_error(f, {filled(sa, 1), filled(sb, 2)}), 2e-2);
}

TEST_P(BroadcastGradSweep, DivGradchecks) {
  const auto& [sa, sb] = GetParam();
  const auto f = [](const std::vector<Var>& v) {
    return sum_all(div(v[0], add_scalar(square(v[1]), 1.5f)));
  };
  EXPECT_LT(max_gradient_error(f, {filled(sa, 3), filled(sb, 4)}), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastGradSweep,
    ::testing::Values(ShapePair{{2, 3}, {2, 3}}, ShapePair{{2, 3}, {3}},
                      ShapePair{{2, 3}, {2, 1}}, ShapePair{{2, 3}, {}},
                      ShapePair{{2, 1, 3}, {4, 1}}, ShapePair{{1, 5}, {4, 1}}));

// ---- Gradcheck across conv geometries ----

struct ConvCase {
  Shape input;
  int k, pad, stride;
};

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, Im2ColGradchecks) {
  const auto& c = GetParam();
  const auto f = [&](const std::vector<Var>& v) {
    return mean_all(square(im2col(v[0], c.k, c.pad, c.stride)));
  };
  EXPECT_LT(max_gradient_error(f, {filled(c.input, 7)}), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGradSweep,
                         ::testing::Values(ConvCase{{1, 1, 4, 4}, 3, 1, 1},
                                           ConvCase{{2, 2, 4, 4}, 2, 0, 1},
                                           ConvCase{{1, 1, 6, 6}, 3, 0, 2},
                                           ConvCase{{1, 3, 3, 3}, 3, 2, 1},
                                           ConvCase{{2, 1, 5, 5}, 1, 0, 1}));

// ---- Algebraic identities ----

TEST(AutogradIdentityTest, SumOfGradsOfSumIsOne) {
  // d(sum x)/dx == 1 elementwise, for any shape.
  for (const Shape& s : {Shape{3}, Shape{2, 4}, Shape{2, 2, 2}}) {
    const Var x = Var::leaf(filled(s, 11));
    const auto g = grad(sum_all(x), {x});
    for (std::int64_t i = 0; i < g[0].value().numel(); ++i) {
      EXPECT_FLOAT_EQ(g[0].value().at(i), 1.0f);
    }
  }
}

TEST(AutogradIdentityTest, LinearityOfGradient) {
  // grad(a*f + b*g) == a*grad(f) + b*grad(g).
  const Tensor x0 = filled({3, 3}, 13);
  auto gf = [&](float a, float b) {
    const Var x = Var::leaf(x0.clone());
    const Var f = sum_all(square(x));
    const Var g = sum_all(exp(mul_scalar(x, 0.3f)));
    const Var combined = add(mul_scalar(f, a), mul_scalar(g, b));
    return grad(combined, {x})[0].value();
  };
  const Tensor g10 = gf(1, 0), g01 = gf(0, 1), g23 = gf(2, 3);
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    EXPECT_NEAR(g23.at(i), 2.0f * g10.at(i) + 3.0f * g01.at(i), 1e-4f);
  }
}

TEST(AutogradIdentityTest, ChainThroughReshapePreservesGradient) {
  // Reshaping is a bijection on elements: gradients must match elementwise.
  const Tensor x0 = filled({2, 6}, 17);
  const Var x1 = Var::leaf(x0.clone());
  const auto g_flat = grad(sum_all(square(x1)), {x1})[0].value();
  const Var x2 = Var::leaf(x0.clone());
  const auto g_reshaped =
      grad(sum_all(square(reshape(x2, {3, 4}))), {x2})[0].value();
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    EXPECT_FLOAT_EQ(g_flat.at(i), g_reshaped.at(i));
  }
}

TEST(AutogradIdentityTest, HessianOfQuadraticIsConstant) {
  // f = 0.5*||x||^2 -> grad = x, hessian = I: second directional derivative
  // along r equals sum(r^2) regardless of x.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Tensor x0 = filled({4}, seed);
    const Tensor r = filled({4}, seed + 100);
    const Var x = Var::leaf(x0.clone());
    const Var f = mul_scalar(sum_all(square(x)), 0.5f);
    const auto g = grad(f, {x}, {.create_graph = true});
    const Var dir = sum_all(mul(g[0], Var::constant(r)));
    const auto h = grad(dir, {x})[0].value();
    for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(h.at(i), r.at(i), 1e-5f);
  }
}

TEST(AutogradIdentityTest, SoftmaxGradRowsSumToZeroManyShapes) {
  for (const std::int64_t classes : {2, 5, 17}) {
    const Var logits = Var::leaf(filled({3, classes}, 29 + static_cast<std::uint64_t>(classes)));
    std::vector<int> labels = {0, static_cast<int>(classes) - 1, static_cast<int>(classes) / 2};
    const auto g = grad(cross_entropy(logits, labels), {logits})[0].value();
    for (int r = 0; r < 3; ++r) {
      float row = 0;
      for (std::int64_t c = 0; c < classes; ++c) row += g.at(r * classes + c);
      EXPECT_NEAR(row, 0.0f, 1e-6f);
    }
  }
}

TEST(AutogradIdentityTest, DetachedBranchContributesNothing) {
  const Tensor x0 = filled({3}, 31);
  const Var x = Var::leaf(x0.clone());
  const Var with_detached = add(sum_all(square(x)), sum_all(mul(x.detach(), x.detach())));
  const Var without = sum_all(square(x));
  const auto g1 = grad(with_detached, {x})[0].value();
  const auto g2 = grad(without, {x})[0].value();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(g1.at(i), g2.at(i));
}

}  // namespace
}  // namespace quickdrop::ag
