// Regression tests for the audit of the pointer-keyed gradient map in
// src/autograd/var.cpp (ISSUE 3, satellite 1).
//
// grad() stores per-node gradients in std::unordered_map<detail::Node*, Var>,
// whose *iteration* order would vary run to run with pointer hashes. The
// implementation must therefore only ever use the map for lookups
// (find/count/emplace) and drive accumulation by the deterministic
// topological order of the graph — the qdlint det-unordered-iter rule
// enforces the "no iteration" half statically; these tests pin the observable
// half: gradients are bitwise identical across repeated backward passes even
// though every fresh graph allocation shuffles the pointer keys' hash
// placement.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/var.h"

namespace quickdrop::ag {
namespace {

Tensor filled(Shape shape, float start, float step) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = start + step * static_cast<float>(i % 17);
  }
  return t;
}

/// A graph with heavy fan-out: `x` and the shared hidden node feed several
/// consumers, so backward accumulates multiple vjp contributions per node —
/// exactly the path whose order an unordered-map sweep would scramble.
Var build_fanout_graph(const Var& x, const Var& w) {
  const Var h = matmul(x, w);          // shared by three consumers
  const Var a = mul(h, h);
  const Var b = add(h, relu(h));
  const Var c = mul(h, add_scalar(matmul(x, w), 0.25f));
  return sum_all(add(add(a, b), c));
}

std::vector<Tensor> run_backward(const Tensor& xv, const Tensor& wv) {
  const Var x = Var::leaf(xv.clone());
  const Var w = Var::leaf(wv.clone());
  const Var loss = build_fanout_graph(x, w);
  const auto g = grad(loss, {x, w});
  return {g[0].value().clone(), g[1].value().clone()};
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(GradDeterminismTest, RepeatedBackwardIsBitwiseIdentical) {
  const Tensor xv = filled({4, 6}, 0.3f, 0.17f);
  const Tensor wv = filled({6, 6}, -0.9f, 0.071f);

  const auto first = run_backward(xv, wv);
  // Each iteration rebuilds the graph from scratch: node allocations land at
  // different addresses, so the unordered map's bucket placement differs
  // while the topological accumulation order must not.
  for (int rep = 0; rep < 10; ++rep) {
    // Perturb the allocator between runs so fresh nodes get fresh addresses.
    std::vector<std::unique_ptr<int>> churn;
    for (int i = 0; i < (rep + 1) * 7; ++i) churn.push_back(std::make_unique<int>(i));

    const auto again = run_backward(xv, wv);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(first[i], again[i]))
          << "gradient " << i << " diverged on repetition " << rep;
    }
  }
}

TEST(GradDeterminismTest, DiamondAccumulationIsBitwiseStable) {
  // Narrow diamond: y = sum(h*h + h) with h shared; the vjp contributions to
  // h must always combine in the same order.
  auto run = [] {
    const Var x = Var::leaf(filled({3, 3}, 1.25f, 0.5f));
    const Var h = mul_scalar(x, 0.75f);
    const Var y = sum_all(add(mul(h, h), h));
    return grad(y, {x})[0].value().clone();
  };
  const Tensor first = run();
  for (int rep = 0; rep < 10; ++rep) {
    EXPECT_TRUE(bitwise_equal(first, run())) << "repetition " << rep;
  }
}

}  // namespace
}  // namespace quickdrop::ag
