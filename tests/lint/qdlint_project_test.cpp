// Tests for qdlint's whole-project stage: layer-map parsing, include-graph
// resolution against the declared DAG, cycle detection (including the
// pathological shapes: self-include, #ifdef-guarded include, missing
// header), and the call-graph-lite reachability rules. The arch fixture
// tree under fixtures/arch/ has its own layers.txt and a golden.

#include "qdlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using qdlint::FileFacts;
using qdlint::Finding;
using qdlint::LayerMap;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(QDLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

FileFacts facts_of(const std::string& relpath, const std::string& source) {
  return qdlint::extract_facts(qdlint::classify(relpath), qdlint::lex(source));
}

LayerMap parse_layers_or_die(const std::string& content) {
  LayerMap map;
  std::string err;
  EXPECT_TRUE(qdlint::parse_layer_map(content, &map, &err)) << err;
  return map;
}

/// The arch fixture tree: six headers under fixtures/arch/ analyzed as the
/// repo-relative paths "arch/...", linked against fixtures/arch/layers.txt.
const std::vector<std::string> kArchFiles = {
    "arch/app/reach_clean.cpp", "arch/app/reach_violations.cpp",
    "arch/app/top.h",           "arch/base/bad_up.h",
    "arch/base/low.h",          "arch/mid/a.h",
    "arch/mid/b.h",             "arch/mid/c.h",
};

std::vector<Finding> link_arch_tree() {
  std::vector<FileFacts> files;
  for (const auto& rel : kArchFiles) files.push_back(facts_of(rel, read_fixture(rel)));
  return qdlint::link_project(files, parse_layers_or_die(read_fixture("arch/layers.txt")));
}

const Finding* find_rule(const std::vector<Finding>& fs, const std::string& rule,
                         const std::string& path) {
  for (const auto& f : fs) {
    if (f.rule == rule && f.path == path) return &f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Layer map parsing
// ---------------------------------------------------------------------------

TEST(LintLayers, ParsesLayersAllowEdgesAndComments) {
  const LayerMap map = parse_layers_or_die(
      "# comment\n"
      "layer util src/util\n"
      "layer services src/fl src/store  # two sibling prefixes\n"
      "allow src/fl src/util\n"
      "\n");
  ASSERT_EQ(map.layers.size(), 2u);
  EXPECT_EQ(map.layers[0].name, "util");
  EXPECT_EQ(map.layers[0].rank, 0);
  EXPECT_EQ(map.layers[1].rank, 1);
  EXPECT_EQ(map.prefix_to_layer.at("src/fl"), 1);
  EXPECT_EQ(map.prefix_to_layer.at("src/store"), 1);
  EXPECT_TRUE(map.allowed.count({"src/fl", "src/util"}));
}

TEST(LintLayers, RejectsMalformedMaps) {
  LayerMap map;
  std::string err;
  EXPECT_FALSE(qdlint::parse_layer_map("layer lonely\n", &map, &err));
  EXPECT_NE(err.find("layers.txt:1"), std::string::npos) << err;
  EXPECT_FALSE(qdlint::parse_layer_map("layer a src/x\nlayer b src/x\n", &map, &err));
  EXPECT_NE(err.find("duplicate prefix"), std::string::npos) << err;
  EXPECT_FALSE(qdlint::parse_layer_map("allow src/a\n", &map, &err));
  EXPECT_FALSE(qdlint::parse_layer_map("deny src/a src/b\n", &map, &err));
  EXPECT_NE(err.find("unknown directive"), std::string::npos) << err;
}

TEST(LintLayers, LongestPrefixWinsAndUnmappedIsEmpty) {
  const LayerMap map = parse_layers_or_die(
      "layer everything src\n"
      "layer util src/util\n");
  EXPECT_EQ(qdlint::layer_prefix_of(map, "src/util/rng.h"), "src/util");
  EXPECT_EQ(qdlint::layer_prefix_of(map, "src/core/x.cpp"), "src");
  EXPECT_EQ(qdlint::layer_prefix_of(map, "src/utility/x.h"), "src")
      << "prefix match must respect path-component boundaries";
  EXPECT_EQ(qdlint::layer_prefix_of(map, "bench/x.cpp"), "");
}

// ---------------------------------------------------------------------------
// Arch fixture tree: layer violation, cycles, pathological includes
// ---------------------------------------------------------------------------

TEST(LintArch, FixtureTreeMatchesGolden) {
  std::vector<std::string> actual;
  for (const auto& f : link_arch_tree()) {
    actual.push_back(f.path + "|" + f.rule + "|" + std::to_string(f.line));
  }
  std::sort(actual.begin(), actual.end());

  std::vector<std::string> expected;
  std::istringstream golden(read_fixture("arch/expected_project_findings.txt"));
  std::string line;
  while (std::getline(golden, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    expected.push_back(line);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
}

TEST(LintArch, CyclePathIsPrintedInIncludeOrder) {
  const auto findings = link_arch_tree();
  const Finding* cycle = find_rule(findings, "arch-include-cycle", "arch/mid/a.h");
  ASSERT_NE(cycle, nullptr);
  EXPECT_NE(cycle->message.find(
                "arch/mid/a.h -> arch/mid/b.h -> arch/mid/c.h -> arch/mid/a.h"),
            std::string::npos)
      << cycle->message;
}

TEST(LintArch, SelfIncludeIsAOneNodeCycle) {
  const auto findings = link_arch_tree();
  const Finding* cycle = find_rule(findings, "arch-include-cycle", "arch/app/top.h");
  ASSERT_NE(cycle, nullptr);
  EXPECT_EQ(cycle->line, 4);
  EXPECT_NE(cycle->message.find("arch/app/top.h -> arch/app/top.h"), std::string::npos);
}

TEST(LintArch, UpwardIncludeNamesBothLayers) {
  const auto findings = link_arch_tree();
  const Finding* viol = find_rule(findings, "arch-layer-violation", "arch/base/bad_up.h");
  ASSERT_NE(viol, nullptr);
  EXPECT_EQ(viol->line, 2);
  EXPECT_NE(viol->message.find("layer 'base'"), std::string::npos) << viol->message;
  EXPECT_NE(viol->message.find("layer 'app'"), std::string::npos) << viol->message;
}

TEST(LintArch, MissingHeadersAreSkippedNeverFatal) {
  // arch/app/top.h includes arch/missing/gone.h, which is not in the file
  // set: the edge is dropped and no finding mentions it.
  for (const auto& f : link_arch_tree()) {
    EXPECT_EQ(f.message.find("gone.h"), std::string::npos) << f.message;
  }
}

TEST(LintArch, IncludeBehindIfdefIsRecordedAsConditional) {
  const FileFacts facts = facts_of("arch/app/top.h", read_fixture("arch/app/top.h"));
  ASSERT_EQ(facts.includes.size(), 4u);
  EXPECT_FALSE(facts.includes[0].conditional);  // arch/base/low.h
  EXPECT_FALSE(facts.includes[2].conditional);  // the self-include
  EXPECT_TRUE(facts.includes[3].conditional) << "#ifdef-guarded include not flagged";
  EXPECT_EQ(facts.includes[3].target, "arch/base/low.h");
}

TEST(LintArch, AllowEdgePermitsAnOtherwiseUpwardInclude) {
  const std::string lower = "#pragma once\n#include \"arch/app/top.h\"\n";
  std::vector<FileFacts> files;
  files.push_back(facts_of("arch/base/bad_up.h", lower));
  files.push_back(facts_of("arch/app/top.h", "#pragma once\n"));
  const std::string base_map = "layer base arch/base\nlayer app arch/app\n";

  const auto denied = qdlint::link_project(files, parse_layers_or_die(base_map));
  ASSERT_EQ(denied.size(), 1u);
  EXPECT_EQ(denied[0].rule, "arch-layer-violation");

  const auto allowed = qdlint::link_project(
      files, parse_layers_or_die(base_map + "allow arch/base arch/app\n"));
  EXPECT_TRUE(allowed.empty());
}

TEST(LintArch, SiblingPrefixesInOneLayerMayIncludeEachOther) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fl/x.h", "#pragma once\n#include \"store/y.h\"\n"));
  files.push_back(facts_of("src/store/y.h", "#pragma once\n#include \"fl/x.h\"\n"));
  const LayerMap map = parse_layers_or_die("layer services src/fl src/store\n");
  // Same layer index: no arch-layer-violation in either direction. The
  // mutual include IS still a cycle, which is the point of keeping the two
  // rules separate.
  const auto findings = qdlint::link_project(files, map);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "arch-include-cycle") << f.rule;
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintArch, UnmappedFilesAreExemptFromLayerRules) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("experimental/x.h", "#pragma once\n#include \"arch/base/low.h\"\n"));
  files.push_back(facts_of("arch/base/low.h", "#pragma once\n"));
  const auto findings =
      qdlint::link_project(files, parse_layers_or_die("layer base arch/base\n"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintArch, NolintOnTheIncludeLineSuppresses) {
  const std::string lower =
      "#pragma once\n"
      "#include \"arch/app/top.h\"  // NOLINT(qdlint-arch-layer-violation)\n";
  std::vector<FileFacts> files;
  files.push_back(facts_of("arch/base/bad_up.h", lower));
  files.push_back(facts_of("arch/app/top.h", "#pragma once\n"));
  const auto findings = qdlint::link_project(
      files, parse_layers_or_die("layer base arch/base\nlayer app arch/app\n"));
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// Reachability: conc-unguarded-global
// ---------------------------------------------------------------------------

const char* kCounterDefs =
    "int g_hits = 0;\n"
    "void bump() { g_hits++; }\n";

const char* kLaunchSite =
    "void bump();\n"
    "void launch(ThreadPool& pool) {\n"
    "  pool.run_chunks(4, [&](int c) { bump(); });\n"
    "}\n";

TEST(LintReach, UnguardedGlobalReachableFromParallelSiteFires) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/counter.cpp", kCounterDefs));
  files.push_back(facts_of("src/fake/launch.cpp", kLaunchSite));
  const auto findings = qdlint::link_project(files, parse_layers_or_die(""));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conc-unguarded-global");
  EXPECT_EQ(findings[0].path, "src/fake/launch.cpp");
  EXPECT_EQ(findings[0].line, 3);  // reported at the submit site
  EXPECT_NE(findings[0].message.find("g_hits"), std::string::npos);
  EXPECT_NE(findings[0].message.find("via bump()"), std::string::npos) << findings[0].message;
}

TEST(LintReach, LockGuardInTheUsingBodySilences) {
  const std::string defs =
      "std::mutex g_mu;\n"
      "int g_hits = 0;\n"
      "void bump() {\n"
      "  std::lock_guard<std::mutex> guard(g_mu);\n"
      "  g_hits++;\n"
      "}\n";
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/counter.cpp", defs));
  files.push_back(facts_of("src/fake/launch.cpp", kLaunchSite));
  EXPECT_TRUE(qdlint::link_project(files, parse_layers_or_die("")).empty());
}

TEST(LintReach, SharedWriteAnnotationAtTheSiteSilences) {
  const std::string site =
      "void bump();\n"
      "void launch(ThreadPool& pool) {\n"
      "  // qdlint: shared-write(bump only touches this chunk's row)\n"
      "  pool.run_chunks(4, [&](int c) { bump(); });\n"
      "}\n";
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/counter.cpp", kCounterDefs));
  files.push_back(facts_of("src/fake/launch.cpp", site));
  EXPECT_TRUE(qdlint::link_project(files, parse_layers_or_die("")).empty());
}

TEST(LintReach, AtomicAndConstGlobalsAreNotIndexed) {
  const FileFacts facts = facts_of("src/fake/x.cpp",
                                   "std::atomic<int> g_count{0};\n"
                                   "const int kLimit = 8;\n"
                                   "constexpr float kEps = 1e-6f;\n"
                                   "int g_mutable;\n");
  ASSERT_EQ(facts.globals.size(), 1u);
  EXPECT_EQ(facts.globals[0].name, "g_mutable");
}

TEST(LintReach, AmbiguousCalleeNamesAreNotTraversed) {
  // Two definitions of helper(): following both would chain unrelated TUs
  // together, so the BFS prunes the name entirely (documented false-negative
  // envelope, DESIGN.md §14).
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/a.cpp", "int g_a = 0;\nvoid helper() { g_a++; }\n"));
  files.push_back(facts_of("src/fake/b.cpp", "void helper() {}\n"));
  files.push_back(facts_of("src/fake/launch.cpp",
                           "void launch(ThreadPool& pool) {\n"
                           "  pool.run_chunks(4, [&](int c) { helper(c); });\n"
                           "}\n"));
  EXPECT_TRUE(qdlint::link_project(files, parse_layers_or_die("")).empty());
}

// ---------------------------------------------------------------------------
// Reachability: det-rng-in-parallel
// ---------------------------------------------------------------------------

TEST(LintReach, RngDrawReachableFromParallelSiteFires) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/draw.cpp",
                           "float draw(Rng& rng) { return rng.uniform(); }\n"));
  files.push_back(facts_of("src/fake/launch.cpp",
                           "float draw(Rng& rng);\n"
                           "void launch(ThreadPool& pool, Rng& rng) {\n"
                           "  pool.run_chunks(4, [&](int c) { draw(rng); });\n"
                           "}\n"));
  const auto findings = qdlint::link_project(files, parse_layers_or_die(""));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "det-rng-in-parallel");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("via draw()"), std::string::npos) << findings[0].message;
}

TEST(LintReach, TagSplitAtTheSubmitSiteSanitizes) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/launch.cpp",
                           "void launch(ThreadPool& pool, Rng& rng) {\n"
                           "  pool.run_chunks(4, [&](int c) {\n"
                           "    Rng child = rng.split(c);\n"
                           "    (void)child.uniform();\n"
                           "  });\n"
                           "}\n"));
  EXPECT_TRUE(qdlint::link_project(files, parse_layers_or_die("")).empty());
}

TEST(LintReach, TagSplitInACalleeSanitizesItsSubtree) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/draw.cpp",
                           "float seeded(Rng& rng, int tag) {\n"
                           "  Rng child = rng.split(tag);\n"
                           "  return child.uniform();\n"
                           "}\n"));
  files.push_back(facts_of("src/fake/launch.cpp",
                           "float seeded(Rng& rng, int tag);\n"
                           "void launch(ThreadPool& pool, Rng& rng) {\n"
                           "  pool.run_chunks(4, [&](int c) { seeded(rng, c); });\n"
                           "}\n"));
  EXPECT_TRUE(qdlint::link_project(files, parse_layers_or_die("")).empty());
}

TEST(LintReach, StdDistributionTypesCountAsDraws) {
  std::vector<FileFacts> files;
  files.push_back(facts_of("src/fake/launch.cpp",
                           "void launch(ThreadPool& pool) {\n"
                           "  pool.run_chunks(4, [&](int c) {\n"
                           "    std::uniform_real_distribution<float> dist(0.f, 1.f);\n"
                           "    (void)dist;\n"
                           "  });\n"
                           "}\n"));
  const auto findings = qdlint::link_project(files, parse_layers_or_die(""));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "det-rng-in-parallel");
}

}  // namespace
