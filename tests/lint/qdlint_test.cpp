// Tests for qdlint itself: lexer literal/comment awareness, per-rule firing
// via fixture files, the expected-findings golden, suppression handling and
// baseline subtraction. QDLINT_FIXTURE_DIR is injected by CMake.

#include "qdlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using qdlint::Finding;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(QDLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fixture file -> the repo-relative path it is analyzed as. Paths are chosen
/// so classify() activates the scopes each fixture targets.
const std::map<std::string, std::string> kFixtureContexts = {
    {"det_violations.cc", "src/fake/det_violations.cpp"},
    {"conc_violations.cc", "src/fake/conc_violations.cpp"},
    {"kernel_violations.cc", "src/tensor/kernel_violations.cpp"},
    {"num_violations.cc", "src/fake/num_violations.cpp"},
    {"api_violations.cc", "src/fake/api_violations.cpp"},
    {"api_durable_violations.cc", "src/fake/api_durable_violations.cpp"},
    {"api_net_violations.cc", "src/fake/api_net_violations.cpp"},
    {"simd_violations.cc", "src/tensor/simd_violations.cpp"},
    {"header_missing_pragma.hh", "src/fake/header_missing_pragma.h"},
    {"clean_tricky.cc", "src/tensor/clean_tricky.cpp"},
    {"lock_scope_violations.cc", "src/fake/lock_scope_violations.cpp"},
    // Outside src/ so det-unordered-iter stays quiet and the escape analysis
    // is exercised in isolation.
    {"iter_escape_violations.cc", "tools/fake/iter_escape_violations.cpp"},
};

std::vector<Finding> analyze_fixture(const std::string& name) {
  const auto it = kFixtureContexts.find(name);
  EXPECT_NE(it, kFixtureContexts.end()) << name;
  return qdlint::analyze(qdlint::classify(it->second), read_fixture(name));
}

std::vector<Finding> analyze_as(const std::string& relpath, const std::string& source) {
  return qdlint::analyze(qdlint::classify(relpath), source);
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> rules;
  rules.reserve(fs.size());
  for (const auto& f : fs) rules.push_back(f.rule);
  return rules;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, TokenizesIdentifiersNumbersPuncts) {
  const auto lexed = qdlint::lex("int x = 42; x != 0.5f;");
  std::vector<std::string> texts;
  for (const auto& t : lexed.tokens) texts.push_back(t.text);
  const std::vector<std::string> want = {"int", "x", "=", "42", ";", "x", "!=", "0.5f", ";"};
  EXPECT_EQ(texts, want);
  EXPECT_EQ(lexed.tokens[6].kind, qdlint::TokKind::kPunct);
  EXPECT_EQ(lexed.tokens[7].kind, qdlint::TokKind::kNumber);
}

TEST(LintLexer, CommentsProduceNoTokens) {
  const auto lexed = qdlint::lex("// std::thread t;\n/* rand() */\nint y;");
  std::vector<std::string> texts;
  for (const auto& t : lexed.tokens) texts.push_back(t.text);
  const std::vector<std::string> want = {"int", "y", ";"};
  EXPECT_EQ(texts, want);
  EXPECT_EQ(lexed.tokens[0].line, 3);
}

TEST(LintLexer, StringAndCharContentsAreOpaque) {
  const auto lexed = qdlint::lex("f(\"rand() \\\" quoted\", 'x');");
  ASSERT_GE(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[2].kind, qdlint::TokKind::kString);
  EXPECT_EQ(lexed.tokens[2].text, "rand() \\\" quoted");
  bool has_rand_ident = false;
  for (const auto& t : lexed.tokens) {
    has_rand_ident |= t.kind == qdlint::TokKind::kIdent && t.text == "rand";
  }
  EXPECT_FALSE(has_rand_ident);
}

TEST(LintLexer, RawStringsWithDelimitersAreOpaque) {
  const auto lexed = qdlint::lex("auto s = R\"delim(srand(1) )\" still inside)delim\"; g();");
  bool has_srand = false;
  bool has_g = false;
  for (const auto& t : lexed.tokens) {
    has_srand |= t.kind == qdlint::TokKind::kIdent && t.text == "srand";
    has_g |= t.kind == qdlint::TokKind::kIdent && t.text == "g";
  }
  EXPECT_FALSE(has_srand) << "raw string content leaked into tokens";
  EXPECT_TRUE(has_g) << "lexer lost its place after the raw string";
}

TEST(LintLexer, PreprocessorDirectivesAreSingleTokens) {
  const auto lexed = qdlint::lex("#pragma once\n#define ADD(a, b) \\\n  ((a) + (b))\nint z;");
  ASSERT_GE(lexed.tokens.size(), 2u);
  EXPECT_EQ(lexed.tokens[0].kind, qdlint::TokKind::kPreproc);
  EXPECT_EQ(lexed.tokens[0].text, "#pragma once");
  EXPECT_EQ(lexed.tokens[1].kind, qdlint::TokKind::kPreproc);
  EXPECT_NE(lexed.tokens[1].text.find("((a) + (b))"), std::string::npos)
      << "continuation line not joined: " << lexed.tokens[1].text;
}

TEST(LintLexer, HarvestsSuppressions) {
  const auto lexed = qdlint::lex(
      "int a;  // NOLINT(qdlint-num-float-eq, qdlint-det-rand)\n"
      "// NOLINTNEXTLINE(qdlint-api-raw-io)\n"
      "int b;  // NOLINT\n"
      "// qdlint: shared-write(disjoint rows)\n");
  const auto& nolint = lexed.marks.nolint;
  ASSERT_TRUE(nolint.count(1));
  EXPECT_TRUE(nolint.at(1).count("qdlint-num-float-eq"));
  EXPECT_TRUE(nolint.at(1).count("qdlint-det-rand"));
  ASSERT_TRUE(nolint.count(3));
  EXPECT_TRUE(nolint.at(3).count("qdlint-api-raw-io"));  // NEXTLINE folded onto 3
  EXPECT_TRUE(nolint.at(3).count("*"));                  // bare NOLINT on 3
  EXPECT_TRUE(lexed.marks.shared_write.count(4));
}

// ---------------------------------------------------------------------------
// Golden fixture test
// ---------------------------------------------------------------------------

TEST(LintGolden, FixturesMatchGolden) {
  std::vector<std::string> actual;
  for (const auto& [fixture, relpath] : kFixtureContexts) {
    (void)relpath;
    for (const auto& f : analyze_fixture(fixture)) {
      actual.push_back(fixture + "|" + f.rule + "|" + std::to_string(f.line));
    }
  }
  std::sort(actual.begin(), actual.end());

  std::vector<std::string> expected;
  std::istringstream golden(read_fixture("expected_findings.txt"));
  std::string line;
  while (std::getline(golden, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    expected.push_back(line);
  }
  std::sort(expected.begin(), expected.end());

  EXPECT_EQ(actual, expected);
}

TEST(LintGolden, CleanTrickyFixtureIsSilent) {
  const auto findings = analyze_fixture("clean_tricky.cc");
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s), first: "
                                << (findings.empty() ? "" : findings[0].rule + " at line " +
                                                                std::to_string(findings[0].line));
}

// ---------------------------------------------------------------------------
// Rule behavior on inline sources
// ---------------------------------------------------------------------------

TEST(LintRules, HardwareConcurrencyQueryIsAllowed) {
  const auto fs = analyze_as("src/fake/x.cpp",
                             "unsigned n = std::thread::hardware_concurrency();");
  EXPECT_TRUE(fs.empty());
}

TEST(LintRules, RawThreadFiresOutsidePoolButNotInside) {
  const std::string src = "#include <thread>\nstd::thread t;\n";
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", src)),
            std::vector<std::string>{"conc-raw-thread"});
  EXPECT_TRUE(analyze_as("src/util/thread_pool.cpp", src).empty());
}

TEST(LintRules, RawIoAllowedInLoggingToolsAndBench) {
  const std::string src = "#include <iostream>\nvoid f() { std::cout << 1; }\n";
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", src)), std::vector<std::string>{"api-raw-io"});
  EXPECT_TRUE(analyze_as("src/util/logging.cpp", src).empty());
  EXPECT_TRUE(analyze_as("tools/some_cli.cpp", src).empty());
  EXPECT_TRUE(analyze_as("bench/some_bench.cpp", src).empty());
}

TEST(LintRules, DurableIoFiresEverywhereExceptStoreAndUtil) {
  const std::string src = "#include <fstream>\nstd::ofstream out(\"x.bin\");\n";
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", src)),
            std::vector<std::string>{"api-durable-io"});
  // Unlike api-raw-io, tools and bench persist artifacts too — they are NOT
  // exempt; only the crash-safe layers' own implementations are.
  EXPECT_EQ(rules_of(analyze_as("tools/some_cli.cpp", src)),
            std::vector<std::string>{"api-durable-io"});
  EXPECT_EQ(rules_of(analyze_as("bench/some_bench.cpp", src)),
            std::vector<std::string>{"api-durable-io"});
  EXPECT_TRUE(analyze_as("src/store/pager.cpp", src).empty());
  EXPECT_TRUE(analyze_as("src/util/atomic_file.cpp", src).empty());
}

TEST(LintRules, DurableIoDistinguishesFopenModes) {
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", "auto* f = std::fopen(p, \"wb\");\n")),
            std::vector<std::string>{"api-durable-io"});
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", "auto* f = std::fopen(p, \"a\");\n")),
            std::vector<std::string>{"api-durable-io"});
  // A non-literal mode cannot be proven read-only: flagged.
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", "auto* f = std::fopen(p, mode());\n")),
            std::vector<std::string>{"api-durable-io"});
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "auto* f = std::fopen(p, \"rb\");\n").empty());
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "std::ifstream in(p);\n").empty());
}

TEST(LintRules, NetIoFiresEverywhereExceptSrcNet) {
  const std::string src = "void f(int fd, const void* b) { ::send(fd, b, 8, 0); }\n";
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", src)), std::vector<std::string>{"api-net-io"});
  // tools and bench speak to the service over net::Io like everyone else.
  EXPECT_EQ(rules_of(analyze_as("tools/some_cli.cpp", src)),
            std::vector<std::string>{"api-net-io"});
  EXPECT_EQ(rules_of(analyze_as("bench/some_bench.cpp", src)),
            std::vector<std::string>{"api-net-io"});
  EXPECT_TRUE(analyze_as("src/net/socket.cpp", src).empty());
}

TEST(LintRules, NetIoIgnoresMembersAndNamespaceQualification) {
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "void f(C& c) { c.send(b, 8); }\n").empty());
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "void f(C* c) { c->send(b, 8); }\n").empty());
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "auto g = std::bind(f, 1);\n").empty());
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "void f() { Channel::listen(16); }\n").empty());
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", "void f(int s) { listen(s, 16); }\n")),
            std::vector<std::string>{"api-net-io"});
}

TEST(LintRules, PragmaOnceSatisfiedHeaderIsSilent) {
  EXPECT_TRUE(analyze_as("src/fake/h.h", "#pragma once\nstruct S {};\n").empty());
  EXPECT_EQ(rules_of(analyze_as("src/fake/h.h", "struct S {};\n")),
            std::vector<std::string>{"api-pragma-once"});
}

TEST(LintRules, UnorderedLookupWithoutIterationIsSilent) {
  // find/count/emplace on an unordered_map are deterministic; only iteration
  // order is not. Mirrors the autograd grads map in src/autograd/var.cpp.
  const std::string src =
      "#include <unordered_map>\n"
      "int f(std::unordered_map<void*, int> grads, void* k) {\n"
      "  auto it = grads.find(k);\n"
      "  return it == grads.end() ? grads.count(k) : it->second;\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintRules, SharedWriteAnnotationOnSameLineAlsoCounts) {
  const std::string src =
      "void f(ThreadPool& p, int* o) {\n"
      "  p.run_chunks(4, [&](int c) { o[c] = c; });  // qdlint: shared-write(disjoint o[c])\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintRules, ExplicitCaptureInParallelRegionIsSilent) {
  const std::string src =
      "void f(ThreadPool& p, int* o) {\n"
      "  p.run_chunks(4, [o](int c) { o[c] = c; });\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintRules, FlatStateRuleFiresInSrcButNotInStateImplOrTests) {
  const std::string src = "std::vector<Tensor> state;\n";
  EXPECT_EQ(rules_of(analyze_as("src/fl/fedavg.cpp", src)),
            std::vector<std::string>{"api-flatstate"});
  EXPECT_EQ(rules_of(analyze_as("src/core/checkpoint.cpp", "std::vector<nn::Tensor> s;\n")),
            std::vector<std::string>{"api-flatstate"});
  // The parameter plane's own implementation may talk per-tensor.
  EXPECT_TRUE(analyze_as("src/nn/state.cpp", src).empty());
  EXPECT_TRUE(analyze_as("src/nn/state.h", "#pragma once\n" + src).empty());
  // Out of scope: tests/tools/bench are free to build per-tensor fixtures.
  EXPECT_TRUE(analyze_as("tests/nn/x.cpp", src).empty());
  EXPECT_TRUE(analyze_as("tools/some_cli.cpp", src).empty());
}

TEST(LintRules, SimdLaneEqFlagsFloatLanesOnly) {
  // Equality on float/double lanes fires; integer lanes and ordering
  // predicates do not.
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", "auto m = _mm256_cmp_ps(a, b, _CMP_EQ_OQ);\n")),
            std::vector<std::string>{"num-simd-lane-eq"});
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", "auto m = _mm_cmpeq_ss(a, b);\n")),
            std::vector<std::string>{"num-simd-lane-eq"});
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "auto m = _mm256_cmp_ps(a, b, _CMP_LE_OQ);\n").empty());
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", "auto m = _mm256_cmpeq_epi32(a, b);\n").empty());
  // Out of scope: tests may compare lanes exactly (that is what parity means).
  EXPECT_TRUE(analyze_as("tests/tensor/x.cpp", "auto m = _mm_cmpeq_ps(a, b);\n").empty());
}

TEST(LintRules, SimdLaneEqSuppressibleLikeFloatEq) {
  const std::string src =
      "// NOLINTNEXTLINE(qdlint-num-simd-lane-eq)\n"
      "auto m = _mm256_cmp_ps(x, zero, _CMP_EQ_OQ);\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintRules, SimdStoreRequiresAnnotationInKernelTus) {
  const std::string bare = "void f(float* y, __m256 v) { _mm256_storeu_ps(y, v); }\n";
  EXPECT_EQ(rules_of(analyze_as("src/tensor/x.cpp", bare)),
            std::vector<std::string>{"conc-simd-store"});
  // Same line or line-above annotations both satisfy the rule, mirroring
  // conc-ref-capture.
  EXPECT_TRUE(analyze_as("src/tensor/x.cpp",
                         "void f(float* y, __m256 v) {\n"
                         "  _mm256_storeu_ps(y, v);  // qdlint: shared-write(disjoint rows)\n"
                         "}\n")
                  .empty());
  EXPECT_TRUE(analyze_as("src/tensor/x.cpp",
                         "void f(float* y, __m256 v) {\n"
                         "  // qdlint: shared-write(each chunk owns y[lo,hi))\n"
                         "  _mm256_stream_ps(y, v);\n"
                         "}\n")
                  .empty());
  // Loads are reads; non-kernel TUs are out of scope.
  EXPECT_TRUE(analyze_as("src/tensor/x.cpp", "auto v = _mm256_loadu_ps(y);\n").empty());
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", bare).empty());
}

TEST(LintRules, TimeSeedOutsideSeedContextIsSilent) {
  // Timing a computation with steady_clock is fine; only seeding from it is
  // flagged.
  const std::string src = "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(LintBaseline, SubtractionRemovesGrandfatheredFindings) {
  const std::string src = "bool f(float x) { return x == 0.5f; }\n";
  const auto findings = analyze_as("src/fake/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  const std::string line_text = "bool f(float x) { return x == 0.5f; }";

  const std::string key = qdlint::baseline_key(findings[0], line_text);
  EXPECT_EQ(key, "src/fake/x.cpp|num-float-eq|bool f(float x) { return x == 0.5f; }");

  const auto baseline = qdlint::parse_baseline("# comment\n\n" + key + "\n");
  EXPECT_TRUE(qdlint::subtract_baseline(findings, baseline, {line_text}).empty());

  // A different file/rule/text does not match.
  const auto other = qdlint::parse_baseline("src/other.cpp|num-float-eq|" + line_text + "\n");
  EXPECT_EQ(qdlint::subtract_baseline(findings, other, {line_text}).size(), 1u);
}

TEST(LintBaseline, EachEntryGrandfathersOneOccurrence) {
  const std::string stmt = "bool g(float x, float y) { return x == 0.5f && y == 0.5f; }";
  const auto findings = analyze_as("src/fake/x.cpp", stmt + "\n");
  ASSERT_EQ(findings.size(), 2u);
  const std::vector<std::string> texts = {stmt, stmt};
  const std::string key = qdlint::baseline_key(findings[0], stmt);

  // One entry -> one of the two findings survives.
  EXPECT_EQ(qdlint::subtract_baseline(findings, qdlint::parse_baseline(key + "\n"), texts).size(),
            1u);
  // Two entries -> both grandfathered.
  EXPECT_TRUE(
      qdlint::subtract_baseline(findings, qdlint::parse_baseline(key + "\n" + key + "\n"), texts)
          .empty());
}

// ---------------------------------------------------------------------------
// Flow-sensitive rules: conc-lock-scope
// ---------------------------------------------------------------------------

TEST(LintFlow, BalancedLockOnEveryPathIsSilent) {
  const std::string src =
      "std::mutex mu;\n"
      "int f(bool b) {\n"
      "  mu.lock();\n"
      "  if (b) {\n"
      "    mu.unlock();\n"
      "    return -1;\n"
      "  }\n"
      "  mu.unlock();\n"
      "  return 0;\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintFlow, EarlyReturnLeakFiresAtTheLockLine) {
  const std::string src =
      "std::mutex mu;\n"
      "int f(bool b) {\n"
      "  mu.lock();\n"
      "  if (b) return 1;\n"
      "  mu.unlock();\n"
      "  return 0;\n"
      "}\n";
  const auto fs = analyze_as("src/fake/x.cpp", src);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"conc-lock-scope"});
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintFlow, UnlockInOnlyOneBranchFires) {
  const std::string src =
      "std::mutex mu;\n"
      "void f(bool b) {\n"
      "  mu.lock();\n"
      "  if (b) mu.unlock();\n"
      "}\n";
  EXPECT_EQ(rules_of(analyze_as("src/fake/x.cpp", src)),
            std::vector<std::string>{"conc-lock-scope"});
}

TEST(LintFlow, OrphanUnlockFiresAtTheUnlockLine) {
  const std::string src =
      "std::mutex mu;\n"
      "void f(bool b) {\n"
      "  if (b) mu.lock();\n"
      "  mu.unlock();\n"
      "}\n";
  const auto fs = analyze_as("src/fake/x.cpp", src);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"conc-lock-scope"});
  EXPECT_EQ(fs[0].line, 4);
}

TEST(LintFlow, LockGuardIsSilent) {
  const std::string src =
      "std::mutex mu;\n"
      "int f() {\n"
      "  std::lock_guard<std::mutex> g(mu);\n"
      "  return 0;\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintFlow, PairInsideLoopBodyStaysBalanced) {
  const std::string src =
      "std::mutex mu;\n"
      "void f(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    mu.lock();\n"
      "    mu.unlock();\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintFlow, LambdaBodiesAreOpaqueToLockScope) {
  // A lambda may stash a lock for a callback to release later; the rule does
  // not look inside (documented approximation, DESIGN.md §14).
  const std::string src =
      "std::mutex mu;\n"
      "void f() {\n"
      "  auto locker = [] { mu.lock(); };\n"
      "  (void)locker;\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", src).empty());
}

TEST(LintFlow, ThreadPoolFileIsExemptFromLockScope) {
  const std::string src =
      "std::mutex mu;\n"
      "void f(bool b) {\n"
      "  mu.lock();\n"
      "  if (b) return;\n"
      "  mu.unlock();\n"
      "}\n";
  EXPECT_TRUE(analyze_as("src/util/thread_pool.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Flow-sensitive rules: det-iter-order-escape
// ---------------------------------------------------------------------------

TEST(LintFlow, UnorderedLoopIntoStreamFires) {
  const std::string src =
      "#include <sstream>\n"
      "#include <unordered_map>\n"
      "std::string f(const std::unordered_map<int, int>& m) {\n"
      "  std::ostringstream os;\n"
      "  for (const auto& kv : m) os << kv.first;\n"
      "  return os.str();\n"
      "}\n";
  const auto fs = analyze_as("tools/x.cpp", src);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"det-iter-order-escape"});
  EXPECT_EQ(fs[0].line, 5);
}

TEST(LintFlow, UnorderedLoopIntoDurableWriteFires) {
  const std::string src =
      "#include <unordered_map>\n"
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : m) {\n"
      "    write_file_atomic(\"out.bin\", pack(kv));\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(rules_of(analyze_as("tools/x.cpp", src)),
            std::vector<std::string>{"det-iter-order-escape"});
}

TEST(LintFlow, UnorderedLoopIntoLogMacroFires) {
  const std::string src =
      "#include <unordered_map>\n"
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  for (auto it = m.begin(); it != m.end(); ++it) QD_LOG_INFO(\"k=%d\", it->first);\n"
      "}\n";
  EXPECT_EQ(rules_of(analyze_as("tools/x.cpp", src)),
            std::vector<std::string>{"det-iter-order-escape"});
}

TEST(LintFlow, OrderInsensitiveAccumulationIsSilent) {
  const std::string src =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<int, int>& m) {\n"
      "  int sum = 0;\n"
      "  for (const auto& kv : m) sum += kv.second;\n"
      "  return sum;\n"
      "}\n";
  EXPECT_TRUE(analyze_as("tools/x.cpp", src).empty());
}

TEST(LintFlow, SerializingASortedCopyIsSilent) {
  const std::string src =
      "#include <sstream>\n"
      "#include <unordered_map>\n"
      "#include <vector>\n"
      "std::string f(const std::unordered_map<int, int>& m) {\n"
      "  std::vector<int> keys;\n"
      "  for (const auto& kv : m) keys.push_back(kv.first);\n"
      "  std::sort(keys.begin(), keys.end());\n"
      "  std::ostringstream os;\n"
      "  for (int k : keys) os << k;\n"
      "  return os.str();\n"
      "}\n";
  EXPECT_TRUE(analyze_as("tools/x.cpp", src).empty());
}

TEST(LintFlow, IterOrderEscapeIsSuppressible) {
  const std::string src =
      "#include <sstream>\n"
      "#include <unordered_map>\n"
      "std::string f(const std::unordered_map<int, int>& m) {\n"
      "  std::ostringstream os;\n"
      "  // NOLINTNEXTLINE(qdlint-det-iter-order-escape)\n"
      "  for (const auto& kv : m) os << kv.first;\n"
      "  return os.str();\n"
      "}\n";
  EXPECT_TRUE(analyze_as("tools/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Cache serialization
// ---------------------------------------------------------------------------

TEST(LintCache, SerializeParseRoundTrip) {
  // A source that exercises every record type: findings, includes, globals,
  // mutexes, function bodies, a parallel site, and NOLINT marks.
  const std::string src =
      "#include \"util/rng.h\"\n"
      "std::mutex g_mu;\n"
      "int g_state;\n"
      "float bad(float x) { return x == 0.5f ? 1.0f : 0.0f; }\n"
      "void par(ThreadPool& p) {\n"
      "  p.run_chunks(4, [&](int i) { helper(i); });  // NOLINT(qdlint-conc-ref-capture)\n"
      "}\n";
  const qdlint::AnalyzedFile analysis =
      qdlint::analyze_file(qdlint::classify("src/fake/x.cpp"), src);
  EXPECT_FALSE(analysis.findings.empty());
  EXPECT_FALSE(analysis.facts.functions.empty());
  EXPECT_FALSE(analysis.facts.sites.empty());
  EXPECT_FALSE(analysis.facts.globals.empty());
  EXPECT_FALSE(analysis.facts.mutexes.empty());
  EXPECT_FALSE(analysis.facts.includes.empty());

  qdlint::Cache cache;
  cache.entries["src/fake/x.cpp"] = {1234567890123LL, src.size(), qdlint::fnv1a64(src), analysis};
  const std::string bytes = qdlint::serialize_cache(cache);
  qdlint::Cache parsed;
  ASSERT_TRUE(qdlint::parse_cache(bytes, &parsed));
  // Re-serializing the parsed cache must reproduce the bytes exactly — this
  // is what makes warm runs byte-identical to cold ones.
  EXPECT_EQ(qdlint::serialize_cache(parsed), bytes);
  const auto& e = parsed.entries.at("src/fake/x.cpp");
  EXPECT_EQ(e.mtime_ns, 1234567890123LL);
  EXPECT_EQ(e.hash, qdlint::fnv1a64(src));
  EXPECT_EQ(e.analysis.findings.size(), analysis.findings.size());
  EXPECT_EQ(e.analysis.facts.sites.size(), analysis.facts.sites.size());
  EXPECT_EQ(e.analysis.facts.nolint, analysis.facts.nolint);
}

TEST(LintCache, EscapesSeparatorBytesInFreeText) {
  qdlint::AnalyzedFile a;
  a.findings.push_back(
      {"x-rule", "src/a.cpp", 1, 2, "msg\twith\ttabs\nand\\slashes", "hint\rcr"});
  a.line_texts.push_back("line\ttext");
  a.facts.path = "src/a.cpp";
  qdlint::Cache c;
  c.entries["src/a.cpp"] = {1, 2, 3, a};
  const std::string bytes = qdlint::serialize_cache(c);
  qdlint::Cache parsed;
  ASSERT_TRUE(qdlint::parse_cache(bytes, &parsed));
  const auto& e = parsed.entries.at("src/a.cpp");
  ASSERT_EQ(e.analysis.findings.size(), 1u);
  EXPECT_EQ(e.analysis.findings[0].message, "msg\twith\ttabs\nand\\slashes");
  EXPECT_EQ(e.analysis.findings[0].hint, "hint\rcr");
  EXPECT_EQ(e.analysis.line_texts[0], "line\ttext");
}

TEST(LintCache, RejectsCorruptInputAndVersionDrift) {
  qdlint::Cache out;
  EXPECT_FALSE(qdlint::parse_cache("", &out));
  EXPECT_FALSE(qdlint::parse_cache("not a cache at all\n", &out));
  EXPECT_TRUE(out.entries.empty());

  // A valid header with a corrupted record rejects the whole file.
  const std::string header = qdlint::serialize_cache(qdlint::Cache{});
  EXPECT_TRUE(qdlint::parse_cache(header, &out));
  EXPECT_FALSE(qdlint::parse_cache(header + "F not numbers here\n", &out));
  EXPECT_TRUE(out.entries.empty()) << "a failed parse must leave the cache empty";

  // Version / rule-hash drift in the header invalidates everything at once.
  std::string drifted = header;
  drifted[drifted.find('2')] = '1';
  EXPECT_FALSE(qdlint::parse_cache(drifted, &out));

  // A truncated body (B without its E) is rejected too.
  qdlint::AnalyzedFile a;
  a.facts.path = "src/a.cpp";
  a.facts.functions.push_back({});
  a.facts.functions.back().name = "f";
  qdlint::Cache c;
  c.entries["src/a.cpp"] = {1, 2, 3, a};
  std::string bytes = qdlint::serialize_cache(c);
  bytes = bytes.substr(0, bytes.rfind("E\n"));
  EXPECT_FALSE(qdlint::parse_cache(bytes, &out));
}

// ---------------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------------

TEST(LintSarif, EmitsRunWithRuleAndLocation) {
  const qdlint::Finding f{"num-float-eq", "src/a.cpp", 7, 3, "float equality", "use epsilon"};
  const std::string s = qdlint::to_sarif({f});
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\": \"qdlint-num-float-eq\""), std::string::npos);
  EXPECT_NE(s.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 7"), std::string::npos);
}

TEST(LintSarif, EmptyFindingsStillProduceACompleteRun) {
  const std::string s = qdlint::to_sarif({});
  EXPECT_NE(s.find("\"results\""), std::string::npos);
  EXPECT_NE(s.find("\"rules\""), std::string::npos) << "rule table must always be present";
}

// ---------------------------------------------------------------------------
// Fix mode
// ---------------------------------------------------------------------------

TEST(LintFix, RewritesTrivialLockPairToLockGuard) {
  const std::string src =
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "int work();\n"
      "int f(bool b) {\n"
      "  mu.lock();\n"
      "  if (b) return -1;\n"
      "  int r = work();\n"
      "  mu.unlock();\n"
      "  return r;\n"
      "}\n";
  const auto findings = analyze_as("src/fake/x.cpp", src);
  ASSERT_EQ(rules_of(findings), std::vector<std::string>{"conc-lock-scope"});

  // Rewrites need no justification note — they remove the hazard.
  const qdlint::FixResult fixed = qdlint::apply_fixes(src, findings, "");
  EXPECT_TRUE(fixed.changed);
  EXPECT_EQ(fixed.lock_rewrites, 1);
  EXPECT_EQ(fixed.nolints_inserted, 0);
  EXPECT_NE(fixed.source.find("const std::lock_guard<std::mutex> mu_guard(mu);"),
            std::string::npos);
  EXPECT_EQ(fixed.source.find("mu.unlock"), std::string::npos);
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", fixed.source).empty())
      << "the rewritten source must re-lint clean";
}

TEST(LintFix, NolintInsertionRequiresAJustification) {
  const std::string src = "bool f(float x) { return x == 0.5f; }\n";
  const auto findings = analyze_as("src/fake/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);

  // No note: nothing is suppressed (a reasonless suppression is worse than
  // the finding); the caller reports the error.
  const qdlint::FixResult skipped = qdlint::apply_fixes(src, findings, "");
  EXPECT_FALSE(skipped.changed);
  EXPECT_EQ(skipped.nolints_inserted, 0);

  const qdlint::FixResult fixed = qdlint::apply_fixes(src, findings, "exact golden compare");
  EXPECT_EQ(fixed.nolints_inserted, 1);
  EXPECT_NE(fixed.source.find("// NOLINTNEXTLINE(qdlint-num-float-eq)"), std::string::npos);
  EXPECT_NE(fixed.source.find("exact golden compare"), std::string::npos);
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", fixed.source).empty());
}

TEST(LintFix, GroupsRulesFiringOnTheSameLineIntoOneComment) {
  // NOLINTNEXTLINE comments do not stack: two rules on one line must share a
  // single inserted comment.
  const std::string src = "float y(float x) { return x == 0.5f ? rand() : 0; }\n";
  const auto findings = analyze_as("src/fake/x.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  const qdlint::FixResult fixed = qdlint::apply_fixes(src, findings, "fixture");
  EXPECT_EQ(fixed.nolints_inserted, 1);
  EXPECT_NE(fixed.source.find("// NOLINTNEXTLINE(qdlint-det-rand, qdlint-num-float-eq)"),
            std::string::npos);
  EXPECT_TRUE(analyze_as("src/fake/x.cpp", fixed.source).empty());
}

TEST(LintFix, FixedFixturesRelintClean) {
  // The acceptance bar for --fix: applying it to the firing fixtures (one
  // lock_guard rewrite + NOLINTs for the rest) leaves nothing behind.
  for (const char* fixture : {"lock_scope_violations.cc", "iter_escape_violations.cc"}) {
    const std::string relpath = kFixtureContexts.at(fixture);
    const std::string source = read_fixture(fixture);
    const auto findings = qdlint::analyze(qdlint::classify(relpath), source);
    ASSERT_FALSE(findings.empty()) << fixture;
    const qdlint::FixResult fixed =
        qdlint::apply_fixes(source, findings, "fixture waiver: exercised by qdlint tests");
    EXPECT_TRUE(fixed.changed) << fixture;
    const auto after = qdlint::analyze(qdlint::classify(relpath), fixed.source);
    EXPECT_TRUE(after.empty()) << fixture << " still fires " << after.size()
                               << " finding(s) after --fix, first: "
                               << (after.empty() ? "" : after[0].rule);
  }
}

TEST(LintBaseline, JsonOutputEscapes) {
  qdlint::Finding f{"api-raw-io", "src/a \"b\".cpp", 3, 7, "msg with \"quotes\"", "hint\nline"};
  const std::string json = qdlint::to_json({f});
  EXPECT_NE(json.find("\"file\": \"src/a \\\"b\\\".cpp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
}

}  // namespace
