// qdlint fixture: kernel-TU-scoped rules (mutable static locals, double
// literals). Analyzed as src/tensor/kernel_violations.cpp — never compiled.

void kernel_examples(ThreadPool& pool, float* out, long n) {
  static int call_count = 0;
  static const float kScale = 2.0f;
  static constexpr long kTile = 64;
  float scale = 0.5;
  double acc = 0.0;
  // qdlint: shared-write(each chunk writes its own disjoint out[lo,hi) slice)
  pool.parallel_for(0, n, 1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) out[i] = scale * kScale;
  });
  ++call_count;
  (void)acc;
  (void)kTile;
}
