// qdlint fixture: NUM float-comparison rule. Analyzed as
// src/fake/num_violations.cpp — never compiled.

bool num_examples(float x, float y, int k) {
  if (x == 0.1f) return true;
  if (y != 2.5) return false;
  if (k == 3) return true;  // integer compare: must NOT fire
  return x == 1e-3f;
}
