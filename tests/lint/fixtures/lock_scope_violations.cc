// qdlint fixture: conc-lock-scope — manual lock()/unlock() pairs that do
// not balance on every path, plus balanced/guarded shapes that must stay
// silent. Analyzed as src/fake/lock_scope_violations.cpp — never compiled.
#include <mutex>

std::mutex m_early, m_branch, m_orphan, m_ok, m_guarded, m_waived, m_loop;
int work();

// The early return leaks the lock: flagged at the lock() line.
int early_return(bool fail) {
  m_early.lock();
  if (fail) return -1;
  int r = work();
  m_early.unlock();
  return r;
}

// Only the then-arm releases: the fall-through path stays locked.
void one_branch(bool flag) {
  m_branch.lock();
  if (flag) {
    m_branch.unlock();
  }
}

// unlock() without a lock() on the flag==false path: flagged at unlock().
void orphan_unlock(bool flag) {
  if (flag) m_orphan.lock();
  m_orphan.unlock();
}

// Balanced on every path, including the early return: silent.
int balanced(bool fail) {
  m_ok.lock();
  if (fail) {
    m_ok.unlock();
    return -1;
  }
  int r = work();
  m_ok.unlock();
  return r;
}

// Loop bodies run zero or more times; a pair fully inside one body stays
// balanced either way: silent.
void loop_balanced(int n) {
  for (int i = 0; i < n; ++i) {
    m_loop.lock();
    work();
    m_loop.unlock();
  }
}

// Scope-guarded: silent (and the recommended fix for everything above).
int guarded() {
  std::lock_guard<std::mutex> guard(m_guarded);
  return work();
}

// Suppressed with a justification: silent.
void waived() {
  // NOLINTNEXTLINE(qdlint-conc-lock-scope) — released by the shutdown hook
  m_waived.lock();
}
