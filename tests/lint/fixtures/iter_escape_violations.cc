// qdlint fixture: det-iter-order-escape — hash-order iteration feeding a
// serialized sink, plus order-insensitive uses that must stay silent.
// Analyzed as tools/fake/iter_escape_violations.cpp (outside src/, so the
// broader det-unordered-iter rule stays quiet and this fixture isolates the
// escape analysis) — never compiled.
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

// Range-for into a stream: the serialized bytes depend on hash order.
std::string render(const std::unordered_map<std::string, int>& counts) {
  std::ostringstream os;
  for (const auto& kv : counts) {
    os << kv.first << "=" << kv.second << "\n";
  }
  return os.str();
}

// Iterator-form loop appending to a string built for output: same problem.
std::string append_csv(const std::unordered_map<int, int>& hist) {
  std::string csv;
  for (auto it = hist.begin(); it != hist.end(); ++it) {
    csv += std::to_string(it->first) + ",";
  }
  return csv;
}

// Order-insensitive accumulation: silent.
int total(const std::unordered_map<int, int>& hist) {
  int sum = 0;
  for (const auto& kv : hist) sum += kv.second;
  return sum;
}

// Collect-then-sort, then serialize the ordered copy: silent (and the
// recommended fix for the two violations above).
std::string sorted_render(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> keys;
  for (const auto& kv : counts) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  for (const auto& key : keys) os << key << "\n";
  return os.str();
}
