// qdlint fixture: every DET rule fires exactly where expected_findings.txt
// says. Analyzed as src/fake/det_violations.cpp — never compiled.
#include <chrono>
#include <random>
#include <unordered_map>

void det_examples() {
  std::random_device rd;
  int a = rand();
  srand(42);
  Rng gen(std::chrono::steady_clock::now().time_since_epoch().count());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::unordered_map<int, float> grads;
  for (const auto& kv : grads) {
    (void)kv;
  }
  for (auto it = grads.begin(); it != grads.end(); ++it) {
  }
  (void)a;
  (void)rd;
}
