// qdlint fixture: API raw-I/O rule. Analyzed as src/fake/api_violations.cpp
// — never compiled.
#include <cstdio>
#include <iostream>

void api_examples(int v) {
  std::cout << "value: " << v << "\n";
  std::cerr << "warn\n";
  std::printf("%d\n", v);
  fprintf(stderr, "%d\n", v);
}

// api-flatstate: per-tensor model states outside nn/state.
std::vector<Tensor> unqualified_state;
std::vector<nn::Tensor> qualified_state;
void takes_state(const std::vector<quickdrop::nn::Tensor>& states);
std::vector<std::vector<Tensor>> history_of_states;  // inner list fires
