// qdlint fixture: API raw-I/O rule. Analyzed as src/fake/api_violations.cpp
// — never compiled.
#include <cstdio>
#include <iostream>

void api_examples(int v) {
  std::cout << "value: " << v << "\n";
  std::cerr << "warn\n";
  std::printf("%d\n", v);
  fprintf(stderr, "%d\n", v);
}
