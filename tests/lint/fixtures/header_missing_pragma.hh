// qdlint fixture: a header with no #pragma once. Analyzed as
// src/fake/header_missing_pragma.h — never compiled.
#ifndef QDLINT_FIXTURE_GUARD
#define QDLINT_FIXTURE_GUARD

struct OldStyleGuardedHeader {};

#endif
