// qdlint fixture: API durable-I/O rule — raw persistence outside the
// crash-safe layers. Analyzed as src/fake/api_durable_violations.cpp — never compiled.
#include <cstdio>
#include <fstream>

void durable_examples(const char* path, const void* buf) {
  std::ofstream out(path);
  std::fstream rw(path);
  std::FILE* f = std::fopen(path, "wb");
  fwrite(buf, 1, 8, f);
  std::FILE* g = std::fopen(path, "r+");
  std::FILE* h = fopen(path, mode_of(path));
}

// Reads are not persistence: never fire.
void reads_are_fine(const char* path) {
  std::ifstream in(path);
  std::FILE* f = std::fopen(path, "rb");
}

// A justified tear-tolerant write carries a NOLINT.
void justified(const char* path) {
  std::ofstream out(path);  // NOLINT(qdlint-api-durable-io) scratch file, regenerated on boot
}
