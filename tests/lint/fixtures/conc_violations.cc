// qdlint fixture: CONC rules on raw threads, detach and unannotated [&]
// captures. Analyzed as src/fake/conc_violations.cpp — never compiled.
#include <thread>

void conc_examples(ThreadPool& pool) {
  std::thread t([] {});
  t.detach();
  auto f = std::async([] { return 1; });
  int shared = 0;
  pool.parallel_for(0, 10, 1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) shared += 1;
  });
  pool.run_chunks(4, [&](int c) { shared += c; });
  (void)f;
}
