// Deliberate SIMD-rule violations plus tricky negatives. Analyzed as
// src/tensor/simd_violations.cpp, so the kernel-TU conc-simd-store scope is
// active alongside the src-wide num-simd-lane-eq rule.

#include <immintrin.h>

void lane_equality(__m256 a, __m256 b, float* out) {
  __m256 eq = _mm256_cmp_ps(a, b, _CMP_EQ_OQ);  // VIOLATION num-simd-lane-eq (line 8)
  __m128 lo = _mm_cmpeq_ps(_mm256_castps256_ps128(a),
                           _mm256_castps256_ps128(b));  // VIOLATION num-simd-lane-eq (line 9)
  __m256d ne = _mm256_cmp_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(a)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(b)),
                             _CMP_NEQ_UQ);  // VIOLATION num-simd-lane-eq (line 11)
  _mm256_storeu_ps(out, eq);  // VIOLATION conc-simd-store (line 14): no annotation
  (void)lo;
  (void)ne;
}

void ordering_compare_is_fine(__m256 a, __m256 b, float* out) {
  const __m256 lt = _mm256_cmp_ps(a, b, _CMP_LT_OQ);  // negative: ordering, not equality
  // qdlint: shared-write(each worker owns a disjoint [lo,hi) output slice)
  _mm256_storeu_ps(out, lt);
  _mm256_stream_ps(out + 8, lt);  // qdlint: shared-write(disjoint tail slice)
}

void integer_lanes_compare_exactly(__m256i a, __m256i b) {
  const __m256i m = _mm256_cmpeq_epi32(a, b);  // negative: integer lanes, exact by nature
  (void)m;
}
