// qdlint fixture: every construct here LOOKS like a violation but must NOT
// fire. Analyzed as src/tensor/clean_tricky.cpp (kernel TU, so kernel-scoped
// rules are active too) — never compiled.
//
// Violations inside comments are invisible to the lexer:
//   std::random_device rd; srand(1); std::thread t; std::cout << "x";
/* block comment spanning lines:
   for (auto& kv : grads) {}   rand()   sleep_for   x == 0.5
*/

// Violations inside string/char/raw-string literals are invisible too.
const char* s1 = "std::random_device rand() printf(\"x\") == 0.5 [&]";
const char* s2 = R"(std::thread t; t.detach(); sleep_for; x != 1.0)";
const char* s3 = R"delim(srand(time(nullptr)) and "nested )" quote)delim";
const char kEq = '=';

float suppressed_examples(float x) {
  if (x == 0.5f) return x;  // NOLINT(qdlint-num-float-eq)
  // NOLINTNEXTLINE(qdlint-num-float-eq)
  if (x != 1.5f) return -x;
  double lr = 0.5;  // explicit double accumulator-style decl: not narrowing
  return x * static_cast<float>(lr);
}

struct VarLike {
  VarLike detach() { return *this; }  // autograd-style detach: no thread context
};

// Per-tensor lists that are NOT model states carry a justified NOLINT; other
// vector<...> element types never fire.
std::vector<Tensor> grad_list;  // NOLINT(qdlint-api-flatstate) gradient list, not a model state
std::vector<TensorView> views_are_fine;
std::vector<int> plain_vector_is_fine;

VarLike member_rand_ok(VarLike v, ThreadPool& pool, float* out, long n) {
  // Member functions named like banned free functions are fine.
  Gen gen;
  (void)gen.rand();
  // Annotated shared-write capture: allowed.
  // qdlint: shared-write(each chunk writes its own disjoint out[lo,hi) slice)
  pool.parallel_for(0, n, 1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) out[i] = 1.0f;
  });
  return v.detach();
}
