#pragma once
#include "arch/mid/c.h"
