#pragma once
#include "arch/mid/b.h"  // first edge of the 3-cycle a -> b -> c -> a
