#pragma once
#include "arch/mid/a.h"  // closes the cycle
