// qdlint arch fixture: a parallel site whose callees write an unguarded
// global and draw from a shared Rng — conc-unguarded-global and
// det-rng-in-parallel both fire at the submit site. Never compiled.
int g_reach_total = 0;

void reach_bump() { g_reach_total += 1; }
int reach_draw(Rng& rng) { return rng.uniform_int(0, 9); }

void reach_launch(ThreadPool& pool) {
  pool.run_chunks(4, [&](int chunk) { reach_bump(); reach_draw(); });
}
