// qdlint arch fixture: the sanitized twin of reach_violations.cpp — the
// global write is lock-guarded and the draw comes from a tag-split child,
// so both reachability rules stay silent. Never compiled.
std::mutex g_reach_mu;
int g_reach_safe = 0;

void reach_add() {
  std::lock_guard<std::mutex> guard(g_reach_mu);
  g_reach_safe += 1;
}

int reach_draw_split(Rng& rng) {
  Rng child = rng.split(1);
  return child.uniform_int(0, 9);
}

void reach_launch_clean(ThreadPool& pool) {
  pool.run_chunks(4, [&](int chunk) { reach_add(); reach_draw_split(); });
}
