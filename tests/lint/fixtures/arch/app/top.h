#pragma once
#include "arch/base/low.h"      // clean downward edge
#include "arch/missing/gone.h"  // missing header: skipped, never fatal
#include "arch/app/top.h"       // self-include: a one-node cycle
#ifdef QD_EXTRA
#include "arch/base/low.h"      // include behind #ifdef: recorded as conditional
#endif
