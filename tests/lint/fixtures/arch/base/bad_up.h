#pragma once
#include "arch/app/top.h"  // layer violation: base -> app is an upward edge
