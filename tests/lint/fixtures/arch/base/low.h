#pragma once
// Lowest layer: includes nothing. Everyone may include this.
inline int low() { return 0; }
