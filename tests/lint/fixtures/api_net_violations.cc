// qdlint fixture: API net-I/O rule — raw socket calls outside src/net.
// Analyzed as src/fake/api_net_violations.cpp — never compiled.
#include <functional>

void socket_examples(int fd, const void* buf, void* out, unsigned len) {
  int s = socket(2, 1, 0);
  bind(s, nullptr, 0);
  listen(s, 16);
  ::connect(s, nullptr, 0);
  ::send(fd, buf, len, 0);
  recv(fd, out, len, 0);
  poll(nullptr, 0, 50);
  setsockopt(s, 1, 2, nullptr, 0);
  shutdown(s, 1);
}

// Qualified and member uses are not the POSIX calls: never fire.
struct Channel {
  void send(const void* buf, unsigned len);
  static void listen(int backlog);
};
void not_sockets(Channel& ch, Channel* p, const void* buf, unsigned len) {
  auto bound = std::bind([](int x) { return x; }, 1);
  ch.send(buf, len);
  p->send(buf, len);
  Channel::listen(16);
}

// A justified raw call carries a NOLINT.
void justified(int fd, const void* buf, unsigned len) {
  ::send(fd, buf, len, 0);  // NOLINT(qdlint-api-net-io) signalfd self-pipe, not protocol traffic
}
