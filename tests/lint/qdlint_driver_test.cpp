// End-to-end tests for the qdlint driver: tree walking, the on-disk
// mtime+hash cache (cold == warm, corrupt cache degrades to cold, edits
// invalidate exactly the touched file), and the error paths. Builds a tiny
// throwaway repo under the system temp directory.

#include "driver.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("qdlint_driver_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);

    // A minimal two-layer repo: util below core, one deliberate per-file
    // violation (rand) and one deliberate layer violation (util -> core).
    write("tools/qdlint/layers.txt", "layer util src/util\nlayer core src/core\n");
    write("src/util/low.h", "#pragma once\ninline int low() { return 0; }\n");
    write("src/util/up.h", "#pragma once\n#include \"core/api.h\"\n");
    write("src/core/api.h", "#pragma once\n");
    write("src/core/bad.cpp", "#include \"util/low.h\"\nint seed = rand();\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path full = root_ / rel;
    fs::create_directories(full.parent_path());
    std::ofstream out(full, std::ios::binary | std::ios::trunc);
    out << content;
  }

  qdlint::DriverOptions opts() const {
    qdlint::DriverOptions o;
    o.root = root_.string();
    o.cache_path = (root_ / "build/qdlint.cache").string();
    return o;
  }

  static std::vector<std::string> keys(const qdlint::DriverResult& r) {
    std::vector<std::string> out;
    for (const auto& f : r.findings) {
      out.push_back(f.path + "|" + f.rule + "|" + std::to_string(f.line));
    }
    return out;
  }

  fs::path root_;
};

TEST_F(DriverTest, ColdRunFindsPerFileAndProjectFindings) {
  const qdlint::DriverResult r = qdlint::run_driver(opts());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.files_scanned, 4);  // layers.txt is not a lintable source file
  EXPECT_EQ(r.cache_hits, 0);
  const std::vector<std::string> want = {
      "src/core/bad.cpp|det-rand|2",
      "src/util/up.h|arch-layer-violation|2",
  };
  EXPECT_EQ(keys(r), want);
  ASSERT_EQ(r.line_texts.size(), 2u);
  EXPECT_EQ(r.line_texts[0], "int seed = rand();");
  EXPECT_TRUE(fs::exists(opts().cache_path)) << "cache not persisted";
}

TEST_F(DriverTest, WarmRunIsFullyCachedAndByteIdentical) {
  const qdlint::DriverResult cold = qdlint::run_driver(opts());
  ASSERT_TRUE(cold.ok) << cold.error;
  const qdlint::DriverResult warm = qdlint::run_driver(opts());
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits, warm.files_scanned);
  // The acceptance bar: identical findings AND identical serialized output —
  // project findings are recomputed from cached facts, never stale.
  EXPECT_EQ(qdlint::to_json(warm.findings), qdlint::to_json(cold.findings));
  EXPECT_EQ(warm.line_texts, cold.line_texts);
}

TEST_F(DriverTest, TouchedButUnchangedFileRefingerprints) {
  ASSERT_TRUE(qdlint::run_driver(opts()).ok);
  // Rewrite one file with identical bytes: mtime changes, hash does not.
  write("src/core/bad.cpp", "#include \"util/low.h\"\nint seed = rand();\n");
  const qdlint::DriverResult r = qdlint::run_driver(opts());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.cache_hits, r.files_scanned) << "content hash should have rescued the stale mtime";
}

TEST_F(DriverTest, CorruptCacheDegradesToAColdRun) {
  const qdlint::DriverResult cold = qdlint::run_driver(opts());
  ASSERT_TRUE(cold.ok) << cold.error;
  write("build/qdlint.cache", "definitely not a qdlint cache\n");
  const qdlint::DriverResult r = qdlint::run_driver(opts());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.cache_hits, 0);
  EXPECT_EQ(keys(r), keys(cold)) << "a bad cache must never change findings";
  // And the bad cache was replaced by a good one.
  const qdlint::DriverResult warm = qdlint::run_driver(opts());
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.cache_hits, warm.files_scanned);
}

TEST_F(DriverTest, EditingAFileInvalidatesOnlyThatEntry) {
  ASSERT_TRUE(qdlint::run_driver(opts()).ok);
  write("src/core/bad.cpp",
        "#include \"util/low.h\"\nint seed = rand();\nint again = rand();\n");
  const qdlint::DriverResult r = qdlint::run_driver(opts());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.cache_hits, r.files_scanned - 1);
  const std::vector<std::string> want = {
      "src/core/bad.cpp|det-rand|2",
      "src/core/bad.cpp|det-rand|3",
      "src/util/up.h|arch-layer-violation|2",
  };
  EXPECT_EQ(keys(r), want);
}

TEST_F(DriverTest, ExplicitPathsRestrictTheWalk) {
  qdlint::DriverOptions o = opts();
  o.paths = {"src/core"};
  const qdlint::DriverResult r = qdlint::run_driver(o);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.files_scanned, 2);
  // The layer violation lives in src/util, which was not scanned.
  const std::vector<std::string> want = {"src/core/bad.cpp|det-rand|2"};
  EXPECT_EQ(keys(r), want);
}

TEST_F(DriverTest, MissingLayerMapIsAHardError) {
  fs::remove(root_ / "tools/qdlint/layers.txt");
  const qdlint::DriverResult r = qdlint::run_driver(opts());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("layer map"), std::string::npos) << r.error;
}

TEST_F(DriverTest, UnknownPathIsAHardError) {
  qdlint::DriverOptions o = opts();
  o.paths = {"no/such/dir"};
  const qdlint::DriverResult r = qdlint::run_driver(o);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no such file"), std::string::npos) << r.error;
}

}  // namespace
