file(REMOVE_RECURSE
  "CMakeFiles/quickdrop_cli.dir/quickdrop_cli.cpp.o"
  "CMakeFiles/quickdrop_cli.dir/quickdrop_cli.cpp.o.d"
  "quickdrop_cli"
  "quickdrop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quickdrop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
