# Empty dependencies file for quickdrop_cli.
# This may be replaced when dependencies are built.
