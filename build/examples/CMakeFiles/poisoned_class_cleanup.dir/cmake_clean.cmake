file(REMOVE_RECURSE
  "CMakeFiles/poisoned_class_cleanup.dir/poisoned_class_cleanup.cpp.o"
  "CMakeFiles/poisoned_class_cleanup.dir/poisoned_class_cleanup.cpp.o.d"
  "poisoned_class_cleanup"
  "poisoned_class_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisoned_class_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
