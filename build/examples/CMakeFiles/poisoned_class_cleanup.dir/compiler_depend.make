# Empty compiler generated dependencies file for poisoned_class_cleanup.
# This may be replaced when dependencies are built.
