# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gdpr_client_removal.
