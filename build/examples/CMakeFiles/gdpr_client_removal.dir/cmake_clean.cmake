file(REMOVE_RECURSE
  "CMakeFiles/gdpr_client_removal.dir/gdpr_client_removal.cpp.o"
  "CMakeFiles/gdpr_client_removal.dir/gdpr_client_removal.cpp.o.d"
  "gdpr_client_removal"
  "gdpr_client_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdpr_client_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
