# Empty compiler generated dependencies file for gdpr_client_removal.
# This may be replaced when dependencies are built.
