file(REMOVE_RECURSE
  "libqd_baselines.a"
)
