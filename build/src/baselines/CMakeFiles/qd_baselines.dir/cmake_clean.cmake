file(REMOVE_RECURSE
  "CMakeFiles/qd_baselines.dir/federaser.cpp.o"
  "CMakeFiles/qd_baselines.dir/federaser.cpp.o.d"
  "CMakeFiles/qd_baselines.dir/fump.cpp.o"
  "CMakeFiles/qd_baselines.dir/fump.cpp.o.d"
  "CMakeFiles/qd_baselines.dir/harness.cpp.o"
  "CMakeFiles/qd_baselines.dir/harness.cpp.o.d"
  "CMakeFiles/qd_baselines.dir/method.cpp.o"
  "CMakeFiles/qd_baselines.dir/method.cpp.o.d"
  "CMakeFiles/qd_baselines.dir/quickdrop_method.cpp.o"
  "CMakeFiles/qd_baselines.dir/quickdrop_method.cpp.o.d"
  "CMakeFiles/qd_baselines.dir/registry.cpp.o"
  "CMakeFiles/qd_baselines.dir/registry.cpp.o.d"
  "CMakeFiles/qd_baselines.dir/simple_methods.cpp.o"
  "CMakeFiles/qd_baselines.dir/simple_methods.cpp.o.d"
  "libqd_baselines.a"
  "libqd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
