# Empty compiler generated dependencies file for qd_baselines.
# This may be replaced when dependencies are built.
