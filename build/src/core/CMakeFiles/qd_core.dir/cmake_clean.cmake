file(REMOVE_RECURSE
  "CMakeFiles/qd_core.dir/checkpoint.cpp.o"
  "CMakeFiles/qd_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/qd_core.dir/distillation.cpp.o"
  "CMakeFiles/qd_core.dir/distillation.cpp.o.d"
  "CMakeFiles/qd_core.dir/distribution_matching.cpp.o"
  "CMakeFiles/qd_core.dir/distribution_matching.cpp.o.d"
  "CMakeFiles/qd_core.dir/finetune.cpp.o"
  "CMakeFiles/qd_core.dir/finetune.cpp.o.d"
  "CMakeFiles/qd_core.dir/quickdrop.cpp.o"
  "CMakeFiles/qd_core.dir/quickdrop.cpp.o.d"
  "CMakeFiles/qd_core.dir/sample_level.cpp.o"
  "CMakeFiles/qd_core.dir/sample_level.cpp.o.d"
  "CMakeFiles/qd_core.dir/synthetic_store.cpp.o"
  "CMakeFiles/qd_core.dir/synthetic_store.cpp.o.d"
  "libqd_core.a"
  "libqd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
