
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/qd_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/distillation.cpp" "src/core/CMakeFiles/qd_core.dir/distillation.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/distillation.cpp.o.d"
  "/root/repo/src/core/distribution_matching.cpp" "src/core/CMakeFiles/qd_core.dir/distribution_matching.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/distribution_matching.cpp.o.d"
  "/root/repo/src/core/finetune.cpp" "src/core/CMakeFiles/qd_core.dir/finetune.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/finetune.cpp.o.d"
  "/root/repo/src/core/quickdrop.cpp" "src/core/CMakeFiles/qd_core.dir/quickdrop.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/quickdrop.cpp.o.d"
  "/root/repo/src/core/sample_level.cpp" "src/core/CMakeFiles/qd_core.dir/sample_level.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/sample_level.cpp.o.d"
  "/root/repo/src/core/synthetic_store.cpp" "src/core/CMakeFiles/qd_core.dir/synthetic_store.cpp.o" "gcc" "src/core/CMakeFiles/qd_core.dir/synthetic_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/qd_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/qd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/qd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/qd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/qd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
