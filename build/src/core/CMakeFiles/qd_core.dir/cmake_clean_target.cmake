file(REMOVE_RECURSE
  "libqd_core.a"
)
