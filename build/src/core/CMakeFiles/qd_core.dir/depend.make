# Empty dependencies file for qd_core.
# This may be replaced when dependencies are built.
