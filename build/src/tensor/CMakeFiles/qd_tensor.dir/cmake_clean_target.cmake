file(REMOVE_RECURSE
  "libqd_tensor.a"
)
