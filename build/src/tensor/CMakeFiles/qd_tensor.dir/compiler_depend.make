# Empty compiler generated dependencies file for qd_tensor.
# This may be replaced when dependencies are built.
