file(REMOVE_RECURSE
  "CMakeFiles/qd_tensor.dir/kernels.cpp.o"
  "CMakeFiles/qd_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/qd_tensor.dir/shape.cpp.o"
  "CMakeFiles/qd_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/qd_tensor.dir/tensor.cpp.o"
  "CMakeFiles/qd_tensor.dir/tensor.cpp.o.d"
  "libqd_tensor.a"
  "libqd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
