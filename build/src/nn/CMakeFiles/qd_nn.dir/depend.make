# Empty dependencies file for qd_nn.
# This may be replaced when dependencies are built.
