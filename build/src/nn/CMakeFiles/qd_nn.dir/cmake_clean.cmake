file(REMOVE_RECURSE
  "CMakeFiles/qd_nn.dir/convnet.cpp.o"
  "CMakeFiles/qd_nn.dir/convnet.cpp.o.d"
  "CMakeFiles/qd_nn.dir/layers.cpp.o"
  "CMakeFiles/qd_nn.dir/layers.cpp.o.d"
  "CMakeFiles/qd_nn.dir/module.cpp.o"
  "CMakeFiles/qd_nn.dir/module.cpp.o.d"
  "CMakeFiles/qd_nn.dir/optimizer.cpp.o"
  "CMakeFiles/qd_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/qd_nn.dir/state.cpp.o"
  "CMakeFiles/qd_nn.dir/state.cpp.o.d"
  "libqd_nn.a"
  "libqd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
