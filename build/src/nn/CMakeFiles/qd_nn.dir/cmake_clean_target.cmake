file(REMOVE_RECURSE
  "libqd_nn.a"
)
