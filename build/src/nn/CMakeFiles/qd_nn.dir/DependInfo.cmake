
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/convnet.cpp" "src/nn/CMakeFiles/qd_nn.dir/convnet.cpp.o" "gcc" "src/nn/CMakeFiles/qd_nn.dir/convnet.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/qd_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/qd_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/qd_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/qd_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/qd_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/qd_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/state.cpp" "src/nn/CMakeFiles/qd_nn.dir/state.cpp.o" "gcc" "src/nn/CMakeFiles/qd_nn.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/qd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/qd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
