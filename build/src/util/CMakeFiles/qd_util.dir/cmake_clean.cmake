file(REMOVE_RECURSE
  "CMakeFiles/qd_util.dir/cli.cpp.o"
  "CMakeFiles/qd_util.dir/cli.cpp.o.d"
  "CMakeFiles/qd_util.dir/logging.cpp.o"
  "CMakeFiles/qd_util.dir/logging.cpp.o.d"
  "CMakeFiles/qd_util.dir/rng.cpp.o"
  "CMakeFiles/qd_util.dir/rng.cpp.o.d"
  "CMakeFiles/qd_util.dir/table.cpp.o"
  "CMakeFiles/qd_util.dir/table.cpp.o.d"
  "libqd_util.a"
  "libqd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
