file(REMOVE_RECURSE
  "libqd_util.a"
)
