# Empty compiler generated dependencies file for qd_util.
# This may be replaced when dependencies are built.
