file(REMOVE_RECURSE
  "CMakeFiles/qd_fl.dir/client_update.cpp.o"
  "CMakeFiles/qd_fl.dir/client_update.cpp.o.d"
  "CMakeFiles/qd_fl.dir/fedavg.cpp.o"
  "CMakeFiles/qd_fl.dir/fedavg.cpp.o.d"
  "libqd_fl.a"
  "libqd_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
