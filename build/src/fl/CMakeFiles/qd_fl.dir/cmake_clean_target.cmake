file(REMOVE_RECURSE
  "libqd_fl.a"
)
