# Empty compiler generated dependencies file for qd_fl.
# This may be replaced when dependencies are built.
