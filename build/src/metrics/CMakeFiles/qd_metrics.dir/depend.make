# Empty dependencies file for qd_metrics.
# This may be replaced when dependencies are built.
