file(REMOVE_RECURSE
  "libqd_metrics.a"
)
