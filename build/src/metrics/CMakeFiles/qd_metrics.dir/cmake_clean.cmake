file(REMOVE_RECURSE
  "CMakeFiles/qd_metrics.dir/evaluate.cpp.o"
  "CMakeFiles/qd_metrics.dir/evaluate.cpp.o.d"
  "libqd_metrics.a"
  "libqd_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
