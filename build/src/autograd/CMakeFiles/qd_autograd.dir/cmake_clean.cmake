file(REMOVE_RECURSE
  "CMakeFiles/qd_autograd.dir/gradcheck.cpp.o"
  "CMakeFiles/qd_autograd.dir/gradcheck.cpp.o.d"
  "CMakeFiles/qd_autograd.dir/ops.cpp.o"
  "CMakeFiles/qd_autograd.dir/ops.cpp.o.d"
  "CMakeFiles/qd_autograd.dir/var.cpp.o"
  "CMakeFiles/qd_autograd.dir/var.cpp.o.d"
  "libqd_autograd.a"
  "libqd_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
