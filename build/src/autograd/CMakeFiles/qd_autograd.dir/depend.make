# Empty dependencies file for qd_autograd.
# This may be replaced when dependencies are built.
