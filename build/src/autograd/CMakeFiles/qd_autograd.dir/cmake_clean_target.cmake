file(REMOVE_RECURSE
  "libqd_autograd.a"
)
