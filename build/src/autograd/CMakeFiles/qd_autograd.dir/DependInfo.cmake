
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/gradcheck.cpp" "src/autograd/CMakeFiles/qd_autograd.dir/gradcheck.cpp.o" "gcc" "src/autograd/CMakeFiles/qd_autograd.dir/gradcheck.cpp.o.d"
  "/root/repo/src/autograd/ops.cpp" "src/autograd/CMakeFiles/qd_autograd.dir/ops.cpp.o" "gcc" "src/autograd/CMakeFiles/qd_autograd.dir/ops.cpp.o.d"
  "/root/repo/src/autograd/var.cpp" "src/autograd/CMakeFiles/qd_autograd.dir/var.cpp.o" "gcc" "src/autograd/CMakeFiles/qd_autograd.dir/var.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/qd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
