file(REMOVE_RECURSE
  "CMakeFiles/qd_data.dir/dataset.cpp.o"
  "CMakeFiles/qd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/qd_data.dir/partition.cpp.o"
  "CMakeFiles/qd_data.dir/partition.cpp.o.d"
  "CMakeFiles/qd_data.dir/synthetic.cpp.o"
  "CMakeFiles/qd_data.dir/synthetic.cpp.o.d"
  "libqd_data.a"
  "libqd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
