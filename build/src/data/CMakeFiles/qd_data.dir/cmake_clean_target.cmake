file(REMOVE_RECURSE
  "libqd_data.a"
)
