# Empty dependencies file for qd_data.
# This may be replaced when dependencies are built.
