# Empty compiler generated dependencies file for qd_attack.
# This may be replaced when dependencies are built.
