file(REMOVE_RECURSE
  "libqd_attack.a"
)
