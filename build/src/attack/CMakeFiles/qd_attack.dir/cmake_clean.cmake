file(REMOVE_RECURSE
  "CMakeFiles/qd_attack.dir/backdoor.cpp.o"
  "CMakeFiles/qd_attack.dir/backdoor.cpp.o.d"
  "CMakeFiles/qd_attack.dir/mia.cpp.o"
  "CMakeFiles/qd_attack.dir/mia.cpp.o.d"
  "libqd_attack.a"
  "libqd_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
