# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/fl_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
