
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/failure_injection_test.cpp" "tests/CMakeFiles/fl_test.dir/fl/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/failure_injection_test.cpp.o.d"
  "/root/repo/tests/fl/fedavg_test.cpp" "tests/CMakeFiles/fl_test.dir/fl/fedavg_test.cpp.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/fedavg_test.cpp.o.d"
  "/root/repo/tests/fl/fedprox_test.cpp" "tests/CMakeFiles/fl_test.dir/fl/fedprox_test.cpp.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/fedprox_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/qd_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/qd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/qd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/qd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/qd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
