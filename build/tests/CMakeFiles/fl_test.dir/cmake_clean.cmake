file(REMOVE_RECURSE
  "CMakeFiles/fl_test.dir/fl/failure_injection_test.cpp.o"
  "CMakeFiles/fl_test.dir/fl/failure_injection_test.cpp.o.d"
  "CMakeFiles/fl_test.dir/fl/fedavg_test.cpp.o"
  "CMakeFiles/fl_test.dir/fl/fedavg_test.cpp.o.d"
  "CMakeFiles/fl_test.dir/fl/fedprox_test.cpp.o"
  "CMakeFiles/fl_test.dir/fl/fedprox_test.cpp.o.d"
  "fl_test"
  "fl_test.pdb"
  "fl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
