file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/core_test.dir/core/checkpoint_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/distillation_test.cpp.o"
  "CMakeFiles/core_test.dir/core/distillation_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/distribution_matching_test.cpp.o"
  "CMakeFiles/core_test.dir/core/distribution_matching_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/quickdrop_test.cpp.o"
  "CMakeFiles/core_test.dir/core/quickdrop_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sample_level_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sample_level_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/synthetic_store_test.cpp.o"
  "CMakeFiles/core_test.dir/core/synthetic_store_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
