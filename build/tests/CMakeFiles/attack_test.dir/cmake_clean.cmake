file(REMOVE_RECURSE
  "CMakeFiles/attack_test.dir/attack/backdoor_test.cpp.o"
  "CMakeFiles/attack_test.dir/attack/backdoor_test.cpp.o.d"
  "CMakeFiles/attack_test.dir/attack/mia_test.cpp.o"
  "CMakeFiles/attack_test.dir/attack/mia_test.cpp.o.d"
  "attack_test"
  "attack_test.pdb"
  "attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
