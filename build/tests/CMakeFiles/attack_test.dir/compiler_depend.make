# Empty compiler generated dependencies file for attack_test.
# This may be replaced when dependencies are built.
