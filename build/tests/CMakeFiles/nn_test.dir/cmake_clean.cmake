file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn/convnet_gradcheck_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/convnet_gradcheck_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/convnet_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/convnet_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/layers_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/optimizer_state_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/optimizer_state_test.cpp.o.d"
  "nn_test"
  "nn_test.pdb"
  "nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
