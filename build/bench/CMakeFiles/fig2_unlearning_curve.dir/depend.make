# Empty dependencies file for fig2_unlearning_curve.
# This may be replaced when dependencies are built.
