file(REMOVE_RECURSE
  "CMakeFiles/fig2_unlearning_curve.dir/fig2_unlearning_curve.cpp.o"
  "CMakeFiles/fig2_unlearning_curve.dir/fig2_unlearning_curve.cpp.o.d"
  "fig2_unlearning_curve"
  "fig2_unlearning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_unlearning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
