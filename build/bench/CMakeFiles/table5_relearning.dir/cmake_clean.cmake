file(REMOVE_RECURSE
  "CMakeFiles/table5_relearning.dir/table5_relearning.cpp.o"
  "CMakeFiles/table5_relearning.dir/table5_relearning.cpp.o.d"
  "table5_relearning"
  "table5_relearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_relearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
