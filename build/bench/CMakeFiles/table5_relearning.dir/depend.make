# Empty dependencies file for table5_relearning.
# This may be replaced when dependencies are built.
