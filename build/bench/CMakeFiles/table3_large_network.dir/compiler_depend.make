# Empty compiler generated dependencies file for table3_large_network.
# This may be replaced when dependencies are built.
