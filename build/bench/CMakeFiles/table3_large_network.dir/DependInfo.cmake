
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_large_network.cpp" "bench/CMakeFiles/table3_large_network.dir/table3_large_network.cpp.o" "gcc" "bench/CMakeFiles/table3_large_network.dir/table3_large_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/qd_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/qd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/qd_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/qd_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/qd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/qd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/qd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/qd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
