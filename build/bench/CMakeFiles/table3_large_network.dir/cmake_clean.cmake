file(REMOVE_RECURSE
  "CMakeFiles/table3_large_network.dir/table3_large_network.cpp.o"
  "CMakeFiles/table3_large_network.dir/table3_large_network.cpp.o.d"
  "table3_large_network"
  "table3_large_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_large_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
