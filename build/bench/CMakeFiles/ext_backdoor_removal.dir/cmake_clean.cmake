file(REMOVE_RECURSE
  "CMakeFiles/ext_backdoor_removal.dir/ext_backdoor_removal.cpp.o"
  "CMakeFiles/ext_backdoor_removal.dir/ext_backdoor_removal.cpp.o.d"
  "ext_backdoor_removal"
  "ext_backdoor_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_backdoor_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
