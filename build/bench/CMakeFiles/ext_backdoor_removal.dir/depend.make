# Empty dependencies file for ext_backdoor_removal.
# This may be replaced when dependencies are built.
