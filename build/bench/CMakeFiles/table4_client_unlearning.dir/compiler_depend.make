# Empty compiler generated dependencies file for table4_client_unlearning.
# This may be replaced when dependencies are built.
