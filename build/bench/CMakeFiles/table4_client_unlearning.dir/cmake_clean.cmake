file(REMOVE_RECURSE
  "CMakeFiles/table4_client_unlearning.dir/table4_client_unlearning.cpp.o"
  "CMakeFiles/table4_client_unlearning.dir/table4_client_unlearning.cpp.o.d"
  "table4_client_unlearning"
  "table4_client_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_client_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
