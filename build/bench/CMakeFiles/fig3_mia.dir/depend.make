# Empty dependencies file for fig3_mia.
# This may be replaced when dependencies are built.
