file(REMOVE_RECURSE
  "CMakeFiles/fig3_mia.dir/fig3_mia.cpp.o"
  "CMakeFiles/fig3_mia.dir/fig3_mia.cpp.o.d"
  "fig3_mia"
  "fig3_mia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
