# Empty dependencies file for fig6_scale_sweep.
# This may be replaced when dependencies are built.
