# Empty compiler generated dependencies file for ext_sample_unlearning.
# This may be replaced when dependencies are built.
