file(REMOVE_RECURSE
  "CMakeFiles/ext_sample_unlearning.dir/ext_sample_unlearning.cpp.o"
  "CMakeFiles/ext_sample_unlearning.dir/ext_sample_unlearning.cpp.o.d"
  "ext_sample_unlearning"
  "ext_sample_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sample_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
