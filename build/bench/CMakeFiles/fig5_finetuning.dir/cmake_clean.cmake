file(REMOVE_RECURSE
  "CMakeFiles/fig5_finetuning.dir/fig5_finetuning.cpp.o"
  "CMakeFiles/fig5_finetuning.dir/fig5_finetuning.cpp.o.d"
  "fig5_finetuning"
  "fig5_finetuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_finetuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
