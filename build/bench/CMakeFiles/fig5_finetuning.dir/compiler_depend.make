# Empty compiler generated dependencies file for fig5_finetuning.
# This may be replaced when dependencies are built.
