# Empty dependencies file for qd_bench_common.
# This may be replaced when dependencies are built.
