file(REMOVE_RECURSE
  "CMakeFiles/qd_bench_common.dir/common/world.cpp.o"
  "CMakeFiles/qd_bench_common.dir/common/world.cpp.o.d"
  "libqd_bench_common.a"
  "libqd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
