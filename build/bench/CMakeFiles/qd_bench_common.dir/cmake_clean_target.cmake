file(REMOVE_RECURSE
  "libqd_bench_common.a"
)
