# Empty dependencies file for fig4_sequential_unlearning.
# This may be replaced when dependencies are built.
