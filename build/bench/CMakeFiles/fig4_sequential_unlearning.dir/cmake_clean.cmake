file(REMOVE_RECURSE
  "CMakeFiles/fig4_sequential_unlearning.dir/fig4_sequential_unlearning.cpp.o"
  "CMakeFiles/fig4_sequential_unlearning.dir/fig4_sequential_unlearning.cpp.o.d"
  "fig4_sequential_unlearning"
  "fig4_sequential_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sequential_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
