# Empty dependencies file for table2_class_unlearning.
# This may be replaced when dependencies are built.
