file(REMOVE_RECURSE
  "CMakeFiles/table2_class_unlearning.dir/table2_class_unlearning.cpp.o"
  "CMakeFiles/table2_class_unlearning.dir/table2_class_unlearning.cpp.o.d"
  "table2_class_unlearning"
  "table2_class_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_class_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
