file(REMOVE_RECURSE
  "CMakeFiles/table6_dd_overhead.dir/table6_dd_overhead.cpp.o"
  "CMakeFiles/table6_dd_overhead.dir/table6_dd_overhead.cpp.o.d"
  "table6_dd_overhead"
  "table6_dd_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_dd_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
