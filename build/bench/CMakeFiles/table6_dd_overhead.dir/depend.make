# Empty dependencies file for table6_dd_overhead.
# This may be replaced when dependencies are built.
